"""The fault-injected soak harness: long randomized runs with live oracles.

The serve stack (daemon, client, engines, caches) is exercised by every unit
test for a handful of requests; :class:`SoakRunner` exercises it for *hundreds
to thousands* of weighted random operations — graph updates, incremental
revalidations, document validations, containment checks, and (against a
durable daemon) checkpoint/kill/warm-restart bounces — while continuously
checking the answers against the independent oracles of
:mod:`repro.schema.reference` and the containment ground truths that hold by
construction.  Runs are reproducible from the :class:`SoakSpec` alone (one
seeded RNG drives every choice), can target a live daemon or the in-process
engines, and optionally run under a :mod:`repro.faults` schedule — the run
then also asserts that every injected fault is *recovered* (client retries,
version-guarded replays, cache quarantine) rather than surfaced.

On an invariant violation the runner shrinks: the recorded update sequence is
greedily minimized (bounded by ``max_shrink_replays`` fresh in-process
replays) to a small failing prefix before :class:`SoakFailure` is raised, so
a soak that fails after 900 steps hands you a reproduction with a handful of
deltas instead of a transcript.

The report dict (written to ``BENCH_soak.json`` by the ``shex-containment
soak`` CLI and ``benchmarks/bench_soak.py``) carries per-op and per-mode
counts, ops/s, the invariant-check tally, and fault/recovery totals::

    spec = SoakSpec(steps=250, seed=1234, fault="mixed")
    report = SoakRunner(spec, DaemonTarget(client, "soak")).run()
    assert report["faults"]["unrecovered"] == 0
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import faults
from repro.engine import vectorized as _vectorized
from repro.engine.containment import ContainmentEngine
from repro.engine.jobs import ValidationJob
from repro.engine.validation import ValidationEngine
from repro.errors import DaemonError, ReproError
from repro.graphs.store import Delta, GraphStore
from repro.obs import metrics as _obs_metrics
from repro.rdf.convert import rdf_to_simple_graph
from repro.rdf.parser import parse_turtle_lite
from repro.schema.reference import maximal_typing_reference
from repro.workloads.bugtracker import (
    bug_tracker_refactored_schema,
    bug_tracker_schema,
)
from repro.workloads.generators import grow_schema_chain

_REG = _obs_metrics.get_registry()
_M_STEPS = _REG.counter(
    "repro_soak_steps_total", "Soak operations executed, by op.", labels=("op",)
)
_M_CHECKS = _REG.counter(
    "repro_soak_invariant_checks_total",
    "Oracle invariant checks run by the soak harness, by outcome.",
    labels=("outcome",),
)
_M_RECOVERIES = _REG.counter(
    "repro_soak_recoveries_total",
    "Faults the harness recovered from, by recovery kind.",
    labels=("kind",),
)
_M_SHRINKS = _REG.counter(
    "repro_soak_shrink_replays_total",
    "Shrinking replays spent minimizing a failing soak sequence.",
)


class SoakError(ReproError):
    """The soak run could not proceed (unrecovered fault, bad target)."""


class SoakFailure(SoakError):
    """An invariant violation survived shrinking.

    :attr:`report` is the partial run report; :attr:`shrunk` is the minimal
    failing update sequence (a list of delta JSON objects) found within the
    shrink budget.
    """

    def __init__(self, message: str, report: Dict[str, Any], shrunk: List[Dict]):
        super().__init__(message)
        self.report = report
        self.shrunk = shrunk


# --------------------------------------------------------------------------- #
# Spec
# --------------------------------------------------------------------------- #
def _default_weights() -> Dict[str, float]:
    return {"update": 0.5, "revalidate": 0.25, "validate": 0.15, "contains": 0.1}


@dataclass
class SoakSpec:
    """Everything that determines a soak run (the report's ``spec`` object).

    ``steps`` bounds the number of operations (``duration``, when set, stops
    the run after that many seconds instead — whichever comes first);
    ``family``/``size`` pick the workload graph (``size`` disjoint copies of
    the bug-tracker instance); ``churn`` is the removal fraction of update
    deltas, ``hotspot`` the probability an update hits copy 0; ``batch`` is
    the job count of one validate operation; ``check_every`` the step period
    of the full oracle checks; ``compressed`` pins the revalidation semantics
    (``None`` = mixed); ``containment_chain`` the length of the
    grown-by-relaxation schema chain; ``fault`` names a
    :data:`repro.faults.SCHEDULES` entry (``None`` = no injection);
    ``toggle_vectorize`` re-rolls ``REPRO_VECTORIZE`` before every step so
    one run drives both the vectorised fixpoint kernel and the object
    fallback against the same oracles (a no-op when numpy is missing); and
    ``max_shrink_replays`` bounds the shrinking budget on failure.
    """

    steps: int = 250
    duration: Optional[float] = None
    seed: int = 1234
    family: str = "bugtracker"
    size: int = 4
    churn: float = 0.4
    hotspot: float = 0.25
    batch: int = 3
    check_every: int = 5
    compressed: Optional[bool] = None
    containment_chain: int = 3
    fault: Optional[str] = None
    max_shrink_replays: int = 160
    toggle_vectorize: bool = False
    weights: Dict[str, float] = field(default_factory=_default_weights)

    def to_json(self) -> Dict[str, Any]:
        """The spec as the JSON-safe ``spec`` object of the report."""
        return {
            "batch": self.batch,
            "check_every": self.check_every,
            "churn": self.churn,
            "compressed": self.compressed,
            "containment_chain": self.containment_chain,
            "duration": self.duration,
            "family": self.family,
            "fault": self.fault,
            "hotspot": self.hotspot,
            "max_shrink_replays": self.max_shrink_replays,
            "seed": self.seed,
            "size": self.size,
            "steps": self.steps,
            "toggle_vectorize": self.toggle_vectorize,
            "weights": dict(sorted(self.weights.items())),
        }


# --------------------------------------------------------------------------- #
# Workload family
# --------------------------------------------------------------------------- #
_COPY_BLOCK = """
ex:{c}_bug1 ex:descr "Boom!{i}" ;
        ex:reportedBy ex:{c}_user1 ;
        ex:reproducedBy ex:{c}_emp1 ;
        ex:related ex:{c}_bug2 .
ex:{c}_bug2 ex:descr "Kaboom!{i}" ;
        ex:reportedBy ex:{c}_user2 ;
        ex:related ex:{c}_bug1 ;
        ex:related ex:{c}_bug3 .
ex:{c}_bug3 ex:descr "Kabang!{i}" ;
        ex:reportedBy ex:{c}_user1 .
ex:{c}_bug4 ex:descr "Bang!{i}" ;
        ex:reportedBy ex:{c}_user2 .
ex:{c}_user1 ex:name "John{i}" .
ex:{c}_user2 ex:name "Mary{i}" ;
         ex:email "m{i}@h.org" .
ex:{c}_emp1 ex:name "Steve{i}" ;
        ex:email "stv{i}@m.pl" .
"""

_PREFIX = "http://example.org/bugs#"


def family_turtle(size: int) -> str:
    """``size`` disjoint copies of the Figure 1 bug-tracker instance.

    Copies use per-copy IRIs *and* per-copy literal strings, so no node —
    not even a literal — is shared between copies: an update inside one copy
    can only affect that copy's typing.
    """
    blocks = ["@prefix ex: <http://example.org/bugs#> .\n"]
    for index in range(size):
        blocks.append(_COPY_BLOCK.format(c=f"c{index}", i=index))
    return "".join(blocks)


def _copy_bugs(graph, copy_index: int) -> List[str]:
    """The bug nodes of one copy, sorted for deterministic sampling."""
    marker = f"{_PREFIX}c{copy_index}_bug"
    return sorted(
        node for node in graph.nodes
        if isinstance(node, str) and node.startswith(marker)
    )


# --------------------------------------------------------------------------- #
# Targets: the system under soak, behind one small interface
# --------------------------------------------------------------------------- #
class InProcessTarget:
    """Drive the engines directly — no daemon, no socket.

    The baseline target: the same operations the daemon would perform, minus
    the serve stack.  Useful to soak the engine layer alone and as the
    replay vehicle for shrinking.
    """

    def __init__(self, backend: str = "serial", cache_size: int = 4096):
        self.validation = ValidationEngine(backend=backend, cache_size=cache_size)
        self.containment = ContainmentEngine(backend=backend, cache_size=cache_size)
        self._schemas: Dict[str, Any] = {}
        self._store: Optional[GraphStore] = None

    def load_schema(self, key: str, schema) -> None:
        self._schemas[key] = schema
        self.validation.compile(schema)

    def register_graph(self, text: str) -> None:
        graph = rdf_to_simple_graph(parse_turtle_lite(text, name="soak"), name="soak")
        self._store = GraphStore(graph)

    def update(self, delta_json: Dict, expect_version: Optional[int]) -> Dict[str, Any]:
        store = self._store
        if expect_version is not None and store.version != expect_version:
            raise DaemonError(
                f"store is at version {store.version}, expected {expect_version}",
                "version-conflict",
            )
        delta = Delta.from_json(delta_json)
        store.apply(delta)
        return {"version": store.version}

    def revalidate(self, schema_key: str, compressed: bool) -> Dict[str, Any]:
        outcome = self.validation.revalidate(
            self._store, self._schemas[schema_key], compressed=compressed
        )
        return {
            "verdict": outcome.result.verdict,
            "untyped_nodes": list(outcome.result.payload["untyped_nodes"]),
            "version": outcome.version,
            "mode": outcome.mode,
        }

    def validate_batch(self, docs: List[str], schema_key: str) -> List[str]:
        schema = self._schemas[schema_key]
        jobs = [
            ValidationJob(
                graph=rdf_to_simple_graph(
                    parse_turtle_lite(text, name="doc"), name="doc"
                ),
                schema=schema,
            )
            for text in docs
        ]
        report = self.validation.run_batch(jobs)
        return [result.verdict for result in report.results]

    def contains(self, left_key: str, right_key: str) -> str:
        self.containment.submit(self._schemas[left_key], self._schemas[right_key])
        report = self.containment.run_batch()
        return report.results[0].verdict

    def graph_version(self) -> int:
        return self._store.version

    def graph_counts(self) -> Tuple[int, int]:
        return self._store.graph.node_count, self._store.graph.edge_count

    def close(self) -> None:
        self.validation.close()
        self.containment.close()


class DaemonTarget:
    """Drive a live daemon through a :class:`repro.serve.client.DaemonClient`.

    The client's auto-reconnect/retry machinery is part of the system under
    test: the target simply issues requests, and the runner's recovery
    accounting reads the client's ``reconnects``/``retried_requests``
    counters afterwards.

    ``restarter``, when given, makes the target restartable: a callable that
    kills the daemon, starts a fresh one on the same address and ``--data-dir``,
    and returns a connected client.  The runner's ``restart`` op then
    checkpoints, bounces the daemon through it, and requires the recovered
    store to match the mirror exactly.
    """

    def __init__(self, client, graph_name: str = "soak", restarter=None):
        self.client = client
        self.graph_name = graph_name
        self.restarter = restarter
        self._schema_texts: Dict[str, str] = {}
        self._retired_retries = 0
        self._retired_reconnects = 0

    def load_schema(self, key: str, schema) -> None:
        # str(schema) is the paper's rule notation, which the daemon's
        # schema parser reads back — a lossless round-trip.
        text = str(schema)
        self._schema_texts[key] = text
        self.client.load_schema(key, text=text)

    def register_graph(self, text: str) -> None:
        self.client.update_graph(self.graph_name, data_text=text)

    def update(self, delta_json: Dict, expect_version: Optional[int]) -> Dict[str, Any]:
        return self.client.update_graph(
            self.graph_name, delta=delta_json, expect_version=expect_version
        )

    def revalidate(self, schema_key: str, compressed: bool) -> Dict[str, Any]:
        return self.client.revalidate(
            self.graph_name, schema_key, compressed=compressed
        )

    def validate_batch(self, docs: List[str], schema_key: str) -> List[str]:
        summary = self.client.batch_validate(
            [{"schema": schema_key, "data": {"text": text}} for text in docs]
        )
        return [entry["verdict"] for entry in summary["results"]]

    def contains(self, left_key: str, right_key: str) -> str:
        return self.client.contains(left_key, right_key)["verdict"]

    def checkpoint(self) -> Dict[str, Any]:
        return self.client.checkpoint(self.graph_name)

    def restart(self) -> None:
        """Bounce the daemon (via ``restarter``) and adopt the new client.

        The outgoing client's retry counters are banked first so the run's
        fault accounting survives the swap.
        """
        if self.restarter is None:
            raise SoakError("this daemon target has no restarter")
        old = self.client
        self._retired_retries += getattr(old, "retried_requests", 0)
        self._retired_reconnects += getattr(old, "reconnects", 0)
        try:
            old.close()
        except Exception:  # noqa: BLE001 — the daemon may already be gone
            pass
        self.client = self.restarter()

    def graph_version(self) -> int:
        return self.client.status()["graphs"][self.graph_name]["version"]

    def graph_counts(self) -> Tuple[int, int]:
        entry = self.client.status()["graphs"][self.graph_name]
        return entry["nodes"], entry["edges"]

    def close(self) -> None:
        self.client.close()


# --------------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------------- #
class SoakRunner:
    """Execute one :class:`SoakSpec` against a target, oracles always on.

    The runner keeps a *mirror* :class:`GraphStore` in-process: every delta
    is derived from (and applied to) the mirror, so it always knows the exact
    graph the target should hold, and the reference oracle runs against the
    mirror while the target answers over the wire.  Divergence — version,
    counts, verdicts, typing — is an invariant violation.
    """

    #: Bounded per-operation retry on top of the client's own retries.
    OP_ATTEMPTS = 4

    def __init__(self, spec: SoakSpec, target):
        if spec.family != "bugtracker":
            raise SoakError(f"unknown workload family {spec.family!r}")
        self.spec = spec
        self.target = target
        self.rng = random.Random(spec.seed)
        self.ops: Dict[str, int] = {"update": 0, "revalidate": 0, "validate": 0,
                                    "contains": 0}
        if spec.weights.get("restart", 0) > 0:
            # Restarts only make sense against a durable daemon: the target
            # must know how to bounce itself (DaemonTarget with a restarter).
            if getattr(target, "restarter", None) is None:
                raise SoakError(
                    "spec weights a 'restart' op but the target has no "
                    "restarter (pass DaemonTarget(..., restarter=...))"
                )
            self.ops["restart"] = 0
        self.modes: Dict[str, int] = {}
        self.restart_modes: Dict[str, int] = {}
        self.checks_passed = 0
        self.op_retries = 0
        self.unrecovered = 0
        self.shrink_replays = 0
        self.kernel_steps: Dict[str, int] = {"object": 0, "vectorized": 0}
        self._removed_pool: List[Tuple[str, str, str]] = []
        self._oplog: List[Dict] = []  # applied update deltas, in order
        self._schema = bug_tracker_schema()
        self._refactored = bug_tracker_refactored_schema()
        self._chain = grow_schema_chain(
            self._schema, spec.containment_chain, rng=random.Random(spec.seed)
        )
        self._docs: List[str] = []
        self._doc_verdicts: List[str] = []

    # -- setup ---------------------------------------------------------- #
    def _setup(self) -> None:
        spec = self.spec
        text = family_turtle(spec.size)
        graph = rdf_to_simple_graph(
            parse_turtle_lite(text, name="soak-mirror"), name="soak-mirror"
        )
        self.mirror = GraphStore(graph)
        self.target.load_schema("soak-main", self._schema)
        self.target.load_schema("soak-refactored", self._refactored)
        for index, schema in enumerate(self._chain):
            self.target.load_schema(f"soak-chain{index}", schema)
        self.target.register_graph(text)
        # Static validate documents with precomputed oracle verdicts: the
        # full instance (valid) and one with a bug's description stripped
        # (invalid — the bug and its referrers lose their types).
        valid_doc = family_turtle(max(spec.size // 2, 1))
        broken_doc = valid_doc.replace('ex:descr "Boom!0" ;', "", 1)
        self._docs = [valid_doc, broken_doc]
        self._doc_verdicts = [
            self._oracle_verdict(doc) for doc in self._docs
        ]

    def _oracle_verdict(self, text: str) -> str:
        graph = rdf_to_simple_graph(parse_turtle_lite(text, name="doc"), name="doc")
        typing = maximal_typing_reference(graph, self._schema)
        untyped = [node for node in graph.nodes if not typing.types_of(node)]
        return "valid" if not untyped else "invalid"

    # -- op-level retry ------------------------------------------------- #
    def _attempt(self, op: str, call):
        """Run one target call with bounded retries over recoverable errors.

        The client already retries transport failures and pre-execution
        rejections; this layer adds a second bound for faults that surface
        as structured errors (an injected solver/executor crash answered as
        ``internal-error``) and counts every recovery.
        """
        last: Optional[Exception] = None
        for attempt in range(self.OP_ATTEMPTS):
            try:
                result = call()
                if attempt:
                    self.op_retries += 1
                    if _obs_metrics.STATE.enabled:
                        _M_RECOVERIES.labels(kind="op-retry").inc()
                return result
            except DaemonError as exc:
                if exc.code == "version-conflict":
                    raise  # reconciled by the caller, not retried blindly
                if exc.code not in (
                    "internal-error", "deadline-exceeded", "overloaded",
                    "connection-closed",
                ):
                    raise
                last = exc
            except faults.InjectedFault as exc:
                # In-process targets surface solver/executor injections
                # directly; a retry recomputes (failed jobs are never cached).
                last = exc
            except OSError as exc:
                last = exc
            time.sleep(0.01 * (attempt + 1))
        self.unrecovered += 1
        raise SoakError(
            f"operation {op!r} failed after {self.OP_ATTEMPTS} attempts: {last}"
        ) from last

    def _check(self, condition: bool, message: str) -> None:
        if condition:
            self.checks_passed += 1
            if _obs_metrics.STATE.enabled:
                _M_CHECKS.labels(outcome="passed").inc()
            return
        if _obs_metrics.STATE.enabled:
            _M_CHECKS.labels(outcome="failed").inc()
        self._fail(message)

    # -- operations ----------------------------------------------------- #
    def _pick_copy(self) -> int:
        if self.rng.random() < self.spec.hotspot:
            return 0
        return self.rng.randrange(self.spec.size)

    def _make_delta(self) -> Optional[Dict]:
        """One random, always-applicable delta against the mirror."""
        graph = self.mirror.graph
        copy_index = self._pick_copy()
        remove: List[Tuple[str, str, str]] = []
        add: List[Tuple[str, str, str]] = []
        for _ in range(self.rng.randrange(1, 3)):
            if self.rng.random() < self.spec.churn:
                # Remove one existing out-edge of this copy's bug nodes.
                # Sorted so the pick is independent of edge-insertion order,
                # which is not stable across processes: the run must be
                # bit-reproducible from (seed, spec) alone.
                candidates = sorted(
                    (edge.source, edge.label, edge.target)
                    for bug in _copy_bugs(graph, copy_index)
                    for edge in graph.out_edges(bug)
                )
                candidates = [c for c in candidates if c not in remove]
                if candidates:
                    remove.append(candidates[self.rng.randrange(len(candidates))])
            elif self._removed_pool and self.rng.random() < 0.5:
                entry = self._removed_pool.pop(
                    self.rng.randrange(len(self._removed_pool))
                )
                source, label, target = entry
                if (
                    graph.has_node(source)
                    and target not in graph.successors(source, label)
                    and entry not in add
                ):
                    add.append(entry)
            else:
                bugs = _copy_bugs(graph, copy_index)
                source = bugs[self.rng.randrange(len(bugs))]
                target = bugs[self.rng.randrange(len(bugs))]
                entry = (source, "related", target)
                if (
                    source != target
                    and target not in graph.successors(source, "related")
                    and entry not in add
                ):
                    add.append(entry)
        if not remove and not add:
            return None
        self._removed_pool.extend(remove)
        return Delta.of(add=add, remove=remove).to_json()

    def _op_update(self) -> None:
        delta_json = self._make_delta()
        if delta_json is None:
            return
        expect = self.mirror.version
        try:
            answer = self._attempt(
                "update", lambda: self.target.update(delta_json, expect)
            )
        except DaemonError as exc:
            if exc.code != "version-conflict":
                raise
            # A replayed delta raced its own lost response: the daemon
            # applied it, the retry was rejected by the version guard.
            # Reconcile: the target must sit exactly one version ahead.
            version = self._attempt("status", self.target.graph_version)
            self._check(
                version == expect + 1,
                f"version-conflict reconcile: target at {version}, "
                f"expected {expect + 1}",
            )
            if _obs_metrics.STATE.enabled:
                _M_RECOVERIES.labels(kind="version-guard").inc()
            answer = {"version": version}
        self.mirror.apply(Delta.from_json(delta_json))
        self._oplog.append(delta_json)
        self._check(
            answer["version"] == self.mirror.version,
            f"update answered version {answer['version']}, "
            f"mirror at {self.mirror.version}",
        )

    def _op_revalidate(self) -> None:
        spec = self.spec
        compressed = (
            spec.compressed
            if spec.compressed is not None
            else self.rng.random() < 0.5
        )
        answer = self._attempt(
            "revalidate",
            lambda: self.target.revalidate("soak-main", compressed),
        )
        mode = answer.get("mode", "?")
        self.modes[mode] = self.modes.get(mode, 0) + 1
        self._check(
            answer["version"] == self.mirror.version,
            f"revalidate at version {answer['version']}, "
            f"mirror at {self.mirror.version}",
        )

    def _op_validate(self) -> None:
        spec = self.spec
        picks = [
            self.rng.randrange(len(self._docs)) for _ in range(max(spec.batch, 1))
        ]
        docs = [self._docs[index] for index in picks]
        verdicts = self._attempt(
            "validate", lambda: self.target.validate_batch(docs, "soak-main")
        )
        for pick, verdict in zip(picks, verdicts):
            self._check(
                verdict == self._doc_verdicts[pick],
                f"validate verdict {verdict!r} against oracle "
                f"{self._doc_verdicts[pick]!r} for document {pick}",
            )

    def _op_contains(self) -> None:
        # Ground truths by construction: the refactored schema is equivalent
        # to the original (Section 1 of the paper — the forward direction
        # needs type-union reasoning the search may not finish, so "unknown"
        # is acceptable there but "not-contained" never is), and every grown
        # chain schema contains its predecessor (intervals only widen, so
        # the identity embedding proves it).
        choices: List[Tuple[str, str, Tuple[str, ...]]] = [
            ("soak-main", "soak-refactored", ("contained", "unknown")),
            ("soak-refactored", "soak-main", ("contained",)),
        ]
        for index in range(len(self._chain) - 1):
            choices.append(
                (f"soak-chain{index}", f"soak-chain{index + 1}", ("contained",))
            )
        left, right, expected = choices[self.rng.randrange(len(choices))]
        verdict = self._attempt(
            "contains", lambda: self.target.contains(left, right)
        )
        self._check(
            verdict in expected,
            f"containment {left} ⊆ {right} answered {verdict!r}, "
            f"expected one of {expected}",
        )

    def _op_restart(self) -> None:
        """Checkpoint, kill and warm-restart the daemon, then re-verify.

        The recovered store must agree with the mirror on version and graph
        counts, and the first revalidation after the bounce must match the
        reference oracle's verdict — a restart is only "survived" when the
        daemon picks the stream back up with the exact same state.
        """
        self._attempt("checkpoint", self.target.checkpoint)
        self._attempt("restart", self.target.restart)
        version = self._attempt("status", self.target.graph_version)
        self._check(
            version == self.mirror.version,
            f"restarted daemon recovered version {version}, "
            f"mirror at {self.mirror.version}",
        )
        nodes, edges = self._attempt("status", self.target.graph_counts)
        self._check(
            (nodes, edges)
            == (self.mirror.graph.node_count, self.mirror.graph.edge_count),
            f"restarted daemon recovered counts {(nodes, edges)}, mirror "
            f"{(self.mirror.graph.node_count, self.mirror.graph.edge_count)}",
        )
        answer = self._attempt(
            "revalidate", lambda: self.target.revalidate("soak-main", False)
        )
        mode = answer.get("mode", "?")
        self.modes[mode] = self.modes.get(mode, 0) + 1
        self.restart_modes[mode] = self.restart_modes.get(mode, 0) + 1
        typing = maximal_typing_reference(self.mirror.graph, self._schema)
        untyped = [
            node for node in self.mirror.graph.nodes if not typing.types_of(node)
        ]
        oracle_verdict = "valid" if not untyped else "invalid"
        self._check(
            answer["verdict"] == oracle_verdict,
            f"first revalidate after restart answered {answer['verdict']!r}, "
            f"reference oracle says {oracle_verdict!r} at version "
            f"{self.mirror.version}",
        )

    # -- the periodic full oracle check ---------------------------------- #
    def _full_check(self) -> None:
        nodes, edges = self._attempt("status", self.target.graph_counts)
        self._check(
            (nodes, edges)
            == (self.mirror.graph.node_count, self.mirror.graph.edge_count),
            f"graph counts diverged: target {(nodes, edges)}, mirror "
            f"{(self.mirror.graph.node_count, self.mirror.graph.edge_count)}",
        )
        answer = self._attempt(
            "revalidate", lambda: self.target.revalidate("soak-main", False)
        )
        mode = answer.get("mode", "?")
        self.modes[mode] = self.modes.get(mode, 0) + 1
        typing = maximal_typing_reference(self.mirror.graph, self._schema)
        untyped = sorted(
            repr(node)
            for node in self.mirror.graph.nodes
            if not typing.types_of(node)
        )
        oracle_verdict = "valid" if not untyped else "invalid"
        self._check(
            answer["verdict"] == oracle_verdict,
            f"revalidate verdict {answer['verdict']!r} against reference "
            f"oracle {oracle_verdict!r} at version {self.mirror.version}",
        )
        self._check(
            sorted(answer["untyped_nodes"]) == untyped,
            f"untyped-node set diverged from the reference oracle at "
            f"version {self.mirror.version}",
        )

    # -- shrinking -------------------------------------------------------- #
    def _replay_fails(self, deltas: List[Dict]) -> bool:
        """Replay a delta subsequence in-process; True when the typing-parity
        invariant still fails at the end.  One replay of the budget."""
        self.shrink_replays += 1
        if _obs_metrics.STATE.enabled:
            _M_SHRINKS.inc()
        engine = ValidationEngine(backend="serial", cache_size=64)
        try:
            graph = rdf_to_simple_graph(
                parse_turtle_lite(family_turtle(self.spec.size), name="replay"),
                name="replay",
            )
            store = GraphStore(graph)
            for delta_json in deltas:
                try:
                    store.apply(Delta.from_json(delta_json))
                except ReproError:
                    return False  # subsequence is not applicable — not failing
            outcome = engine.revalidate(store, self._schema)
            typing = maximal_typing_reference(store.graph, self._schema)
            untyped = tuple(
                sorted(
                    (repr(n) for n in store.graph.nodes if not typing.types_of(n))
                )
            )
            return tuple(outcome.result.payload["untyped_nodes"]) != untyped
        except ReproError:
            return False
        finally:
            engine.close()

    def _shrink(self) -> List[Dict]:
        """Greedy chunk-removal minimization of the recorded update log.

        Fault injection is suspended for the replays (the failure must
        reproduce without the noise), and the budget is
        ``spec.max_shrink_replays`` replays, each a fresh in-process engine.
        """
        suspended = faults.uninstall()
        try:
            current = list(self._oplog)
            if not self._replay_fails(current):
                return []  # not reproducible in-process: report the full log
            chunk = max(len(current) // 2, 1)
            while chunk >= 1 and self.shrink_replays < self.spec.max_shrink_replays:
                index = 0
                while (
                    index < len(current)
                    and self.shrink_replays < self.spec.max_shrink_replays
                ):
                    candidate = current[:index] + current[index + chunk:]
                    if candidate and self._replay_fails(candidate):
                        current = candidate
                    else:
                        index += chunk
                chunk //= 2
            return current
        finally:
            if suspended is not None:
                faults.STATE.injector = suspended

    def _fail(self, message: str) -> None:
        shrunk = self._shrink()
        report = self._report(seconds=max(time.perf_counter() - self._t0, 1e-9))
        raise SoakFailure(
            f"soak invariant violated at step {sum(self.ops.values())}: "
            f"{message} (shrunk to {len(shrunk)} deltas in "
            f"{self.shrink_replays} replays)",
            report,
            shrunk,
        )

    # -- main loop -------------------------------------------------------- #
    def _pick_op(self) -> str:
        total = sum(self.spec.weights.values())
        roll = self.rng.random() * total
        acc = 0.0
        for name in sorted(self.spec.weights):
            acc += self.spec.weights[name]
            if roll < acc:
                return name
        return "update"

    def run(self) -> Dict[str, Any]:
        """Execute the spec; returns the report dict, raises on violation."""
        spec = self.spec
        injector_before = faults.stats()["fired"].copy()
        self._setup()
        self._t0 = time.perf_counter()
        handlers = {
            "update": self._op_update,
            "revalidate": self._op_revalidate,
            "validate": self._op_validate,
            "contains": self._op_contains,
        }
        if "restart" in self.ops:
            handlers["restart"] = self._op_restart
        toggling = spec.toggle_vectorize and _vectorized.available()
        flag_before = os.environ.get(_vectorized.ENV_FLAG)
        step = 0
        try:
            while step < spec.steps:
                if (
                    spec.duration is not None
                    and time.perf_counter() - self._t0 >= spec.duration
                ):
                    break
                if toggling:
                    # Re-roll the kernel per step: both implementations must
                    # agree with the oracles *and* with each other's memo
                    # entries, since the signature memo persists across flips.
                    vectorize = self.rng.random() < 0.5
                    os.environ[_vectorized.ENV_FLAG] = "1" if vectorize else "0"
                    kernel = "vectorized" if vectorize else "object"
                    self.kernel_steps[kernel] += 1
                op = self._pick_op()
                handlers[op]()
                self.ops[op] += 1
                if _obs_metrics.STATE.enabled:
                    _M_STEPS.labels(op=op).inc()
                step += 1
                if spec.check_every and step % spec.check_every == 0:
                    self._full_check()
        finally:
            if toggling:
                if flag_before is None:
                    os.environ.pop(_vectorized.ENV_FLAG, None)
                else:
                    os.environ[_vectorized.ENV_FLAG] = flag_before
        seconds = time.perf_counter() - self._t0
        return self._report(seconds, injected_before=injector_before)

    def _report(
        self,
        seconds: float,
        injected_before: Optional[Dict[str, int]] = None,
    ) -> Dict[str, Any]:
        fired = faults.stats()["fired"]
        if injected_before:
            fired = {
                point: count - injected_before.get(point, 0)
                for point, count in fired.items()
                if count - injected_before.get(point, 0) > 0
            }
        client = getattr(self.target, "client", None)
        steps = sum(self.ops.values())
        report = {
            "invariant_checks_passed": self.checks_passed,
            "kernel_steps": dict(sorted(self.kernel_steps.items())),
            "modes": dict(sorted(self.modes.items())),
            "ops": dict(sorted(self.ops.items())),
            "ops_per_second": round(steps / seconds, 2) if seconds else 0.0,
            "seconds": round(seconds, 6),
            "spec": self.spec.to_json(),
            "steps": steps,
            "faults": {
                "injected": sum(fired.values()),
                "by_point": dict(sorted(fired.items())),
                "client_retries": getattr(client, "retried_requests", 0)
                + getattr(self.target, "_retired_retries", 0),
                "reconnects": getattr(client, "reconnects", 0)
                + getattr(self.target, "_retired_reconnects", 0),
                "op_retries": self.op_retries,
                "unrecovered": self.unrecovered,
            },
        }
        if "restart" in self.ops:
            report["restarts"] = {
                "count": self.ops["restart"],
                "modes": dict(sorted(self.restart_modes.items())),
            }
        return report


def run_soak(spec: SoakSpec, target) -> Dict[str, Any]:
    """Convenience wrapper: build a runner, run it, close the target."""
    runner = SoakRunner(spec, target)
    try:
        return runner.run()
    finally:
        try:
            target.close()
        except Exception:  # noqa: BLE001 — closing best-effort after a soak
            pass
