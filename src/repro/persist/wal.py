"""Length-prefixed, CRC32-checksummed write-ahead log.

One WAL file holds the deltas applied to a :class:`~repro.persist.store.
DurableStore` since its last snapshot.  The file starts with a fixed magic
header and then a flat sequence of records::

    +--------+--------+----------------------+
    | u32 LE | u32 LE | UTF-8 JSON payload   |
    | length | crc32  | (``length`` bytes)   |
    +--------+--------+----------------------+

Each payload is ``{"v": to_version, "delta": <codec delta>}`` — the delta
that advances the store from ``to_version - 1`` to ``to_version``.  Records
carry their target version explicitly so replay can *deduplicate*: a crash
between the WAL append and the process dying can leave a duplicate tail
record, and replay simply skips anything at or below the store's current
version.

Recovery never fails on a damaged tail.  :func:`read_records` scans records
front to back and stops at the first frame that is short, truncated, or
fails its checksum; everything before it is intact (CRC-verified), and the
damaged suffix is reported as a byte offset so the opener can truncate the
file back to its last good record — exactly the contract of the
crash-recovery property suite: *no record that was fully fsynced is ever
lost, and no torn record is ever half-applied*.

Durability is the fsync policy's business (:class:`FsyncPolicy`):

``always``        fsync after every append — no acknowledged write is lost.
``interval[:s]``  fsync at most every ``s`` seconds (default 1.0) — bounded
                  loss window, much higher throughput.
``off``           never fsync explicitly — the OS page cache decides.

Fault injection hooks: ``persist.io`` raises before anything is written;
``persist.torn_write`` writes a *partial* frame and raises, leaving exactly
the torn-tail state recovery must cope with.  A writer that survives a torn
write self-heals on the next append by truncating back to the last good
offset first.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro import faults as _faults
from repro.errors import PersistError
from repro.obs import metrics as _obs_metrics

MAGIC = b"RWAL0001\n"
_HEADER = struct.Struct("<II")

_REGISTRY = _obs_metrics.get_registry()
_M_APPENDS = _REGISTRY.counter(
    "repro_persist_wal_appends_total", "WAL records appended"
)
_M_BYTES = _REGISTRY.counter(
    "repro_persist_wal_bytes_total", "WAL bytes written (frames, not fsync)"
)
_M_REPLAYED = _REGISTRY.counter(
    "repro_persist_replayed_records_total", "WAL records replayed at open"
)
_M_TRUNCATED = _REGISTRY.counter(
    "repro_persist_truncated_tails_total", "damaged WAL tails truncated"
)


# --------------------------------------------------------------------------- #
# Fsync policy
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FsyncPolicy:
    """When to fsync the WAL file after an append (see module docstring)."""

    mode: str = "always"
    interval: float = 1.0

    @classmethod
    def parse(cls, spec: "FsyncPolicy | str") -> "FsyncPolicy":
        if isinstance(spec, FsyncPolicy):
            return spec
        text = str(spec).strip().lower()
        if text in ("always", "off"):
            return cls(text)
        if text == "interval":
            return cls("interval")
        if text.startswith("interval:"):
            try:
                seconds = float(text.split(":", 1)[1])
            except ValueError:
                raise PersistError(f"bad fsync policy {spec!r}") from None
            if seconds <= 0:
                raise PersistError(f"fsync interval must be positive: {spec!r}")
            return cls("interval", seconds)
        raise PersistError(
            f"bad fsync policy {spec!r} (expected always, interval[:seconds], or off)"
        )

    def __str__(self) -> str:
        if self.mode == "interval":
            return f"interval:{self.interval:g}"
        return self.mode


def _frame(version: int, delta_payload: Any) -> bytes:
    payload = json.dumps(
        {"v": version, "delta": delta_payload},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


# --------------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------------- #
def scan_frames(data: bytes) -> Tuple[List[Tuple[int, Any]], int, bool]:
    """Parse WAL bytes into ``(records, good_size, damaged_tail)``.

    ``records`` is the list of ``(version, delta_payload)`` pairs whose
    frames are fully present and CRC-clean; ``good_size`` is the byte offset
    just past the last good frame (the truncation point); ``damaged_tail``
    is True when trailing bytes past ``good_size`` had to be discarded.
    """
    if not data.startswith(MAGIC):
        raise PersistError("WAL file has a bad magic header")
    records: List[Tuple[int, Any]] = []
    offset = len(MAGIC)
    size = len(data)
    while offset < size:
        if offset + _HEADER.size > size:
            return records, offset, True
        length, checksum = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            return records, offset, True
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            return records, offset, True
        try:
            record = json.loads(payload.decode("utf-8"))
            version = record["v"]
            delta_payload = record["delta"]
        except (ValueError, KeyError, TypeError):
            return records, offset, True
        records.append((version, delta_payload))
        offset = end
    return records, offset, False


def read_records(path: str) -> Tuple[List[Tuple[int, Any]], int, bool]:
    """:func:`scan_frames` over a file; missing file reads as empty."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, False
    if not data:
        return [], 0, False
    return scan_frames(data)


# --------------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------------- #
class WriteAheadLog:
    """Append-only writer over one WAL file (single-writer discipline)."""

    def __init__(self, path: str, policy: "FsyncPolicy | str" = "always"):
        self.path = path
        self.policy = FsyncPolicy.parse(policy)
        self.records = 0
        self.bytes = 0
        self._torn = False
        self._last_sync = time.monotonic()
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._file = open(path, "ab")
        if fresh:
            self._file.write(MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())
        self._good_offset = self._file.tell()

    # ------------------------------------------------------------------ #
    def append(self, version: int, delta_payload: Any) -> int:
        """Append one record; returns the frame size in bytes.

        Write-ahead contract: raises *before* touching the file on an
        injected ``persist.io`` fault, and leaves a torn (but recoverable)
        tail on ``persist.torn_write``.  Either way no record is partially
        acknowledged — the caller must not mutate its store if this raises.
        """
        _faults.maybe_fail("persist.io")
        frame = _frame(version, delta_payload)
        if self._torn:
            # A previous torn write left garbage past the good offset;
            # reclaim it before appending (self-healing writer).
            self._file.truncate(self._good_offset)
            self._file.seek(self._good_offset)
            self._torn = False
        if _faults.should_fire("persist.torn_write"):
            self._file.write(frame[: max(1, len(frame) // 2)])
            self._file.flush()
            self._torn = True
            raise _faults.InjectedIOError("persist.torn_write")
        self._file.write(frame)
        self._file.flush()
        self._maybe_sync()
        self._good_offset += len(frame)
        self.records += 1
        self.bytes += len(frame)
        _M_APPENDS.inc()
        _M_BYTES.inc(len(frame))
        return len(frame)

    def _maybe_sync(self) -> None:
        if self.policy.mode == "off":
            return
        now = time.monotonic()
        if self.policy.mode == "interval" and now - self._last_sync < self.policy.interval:
            return
        os.fsync(self._file.fileno())
        self._last_sync = now

    def sync(self) -> None:
        """Force an fsync regardless of policy (checkpoint barrier)."""
        self._file.flush()
        os.fsync(self._file.fileno())
        self._last_sync = time.monotonic()

    def close(self) -> None:
        try:
            self._file.flush()
        finally:
            self._file.close()


# --------------------------------------------------------------------------- #
# Recovery helpers
# --------------------------------------------------------------------------- #
def recover(path: str) -> Tuple[List[Tuple[int, Any]], Dict[str, int]]:
    """Read a WAL for replay, truncating any damaged tail in place.

    Returns ``(records, stats)`` where ``stats`` has ``records``,
    ``truncated`` (0/1) and ``dropped_bytes``.  Missing file → no records.
    """
    records, good_size, damaged = read_records(path)
    stats = {"records": len(records), "truncated": 0, "dropped_bytes": 0}
    if damaged:
        total = os.path.getsize(path)
        stats["truncated"] = 1
        stats["dropped_bytes"] = total - good_size
        with open(path, "r+b") as handle:
            handle.truncate(good_size)
            handle.flush()
            os.fsync(handle.fileno())
        _M_TRUNCATED.inc()
    if records:
        _M_REPLAYED.inc(len(records))
    return records, stats
