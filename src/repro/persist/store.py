"""Durable graph stores: snapshot + WAL persistence with warm recovery.

A :class:`DurableStore` is a :class:`repro.graphs.store.GraphStore` whose
state survives the process.  On disk, one store owns one directory::

    <directory>/
        MANIFEST.json          # {"format": N, "name": ..., "generation": G}
        snapshot-<G>.json      # graph + delta log tail + partition + typings
        wal-<G>.log            # deltas applied since snapshot G

**Checkpointing** (:meth:`DurableStore.checkpoint`) writes the next
generation's snapshot with the atomic write-tmp → fsync → rename dance,
opens a fresh WAL, *then* flips the manifest — so a crash at any point
leaves the previous generation fully intact.  One previous generation is
kept as a fallback against a corrupt newest snapshot; older ones are
pruned.

**Every apply is write-ahead**: the resolved delta is appended to the WAL
(length-prefixed, CRC32-checksummed, fsync per policy) *before* the graph
mutates, via the :meth:`GraphStore._wal_write` hook — a failed append
leaves the store at its prior version, so the disk never lags an
acknowledged write by more than the fsync policy's window.

**Opening** (:meth:`DurableStore.open`) runs any pending format migrations
(:mod:`repro.persist.migrations`), loads the newest readable snapshot
(falling back one generation if the newest is corrupt), restores the kind
partition and the delta-log tail, then replays the WAL — truncating a torn
tail record instead of failing, and skipping duplicate records left by a
crash-during-append (records carry their target version).  The snapshot's
persisted typing snapshots come back as :attr:`restored_typings`, ready for
:meth:`repro.engine.validation.ValidationEngine.seed_typing` — which is
what makes the restart *warm*: the first revalidate runs incrementally from
the checkpoint instead of retyping the world.
"""

from __future__ import annotations

import glob
import json
import os
import re
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro import faults as _faults
from repro.errors import GraphError, PersistError
from repro.graphs.graph import Graph
from repro.graphs.store import Delta, GraphStore
from repro.obs import metrics as _obs_metrics
from repro.obs import tracing as _obs_tracing
from repro.persist import codec
from repro.persist import migrations as _migrations
from repro.persist import wal as _wal
from repro.persist.wal import FsyncPolicy, WriteAheadLog

MANIFEST_NAME = "MANIFEST.json"
_GEN_RE = re.compile(r"^(?:snapshot|wal)-(\d+)\.(?:json|log)$")

_REGISTRY = _obs_metrics.get_registry()
_M_CHECKPOINTS = _REGISTRY.counter(
    "repro_persist_checkpoints_total", "snapshot checkpoints written"
)
_M_SNAPSHOT_SECONDS = _REGISTRY.histogram(
    "repro_persist_snapshot_seconds", "wall time of one checkpoint"
)


# --------------------------------------------------------------------------- #
# Atomic file helpers
# --------------------------------------------------------------------------- #
def _fsync_dir(directory: str) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_json_atomic(path: str, payload: Any) -> None:
    """Write JSON via write-tmp → fsync → rename → fsync-dir."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path) or ".")


def write_manifest(directory: str, manifest: Dict[str, Any]) -> None:
    write_json_atomic(os.path.join(directory, MANIFEST_NAME), manifest)


def read_manifest(directory: str) -> Dict[str, Any]:
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise PersistError(f"no manifest in {directory!r} — not a data directory") from None
    except ValueError as exc:
        raise PersistError(f"corrupt manifest {path!r}: {exc}") from None
    if not isinstance(manifest, dict) or "format" not in manifest:
        raise PersistError(f"corrupt manifest {path!r}: missing format")
    return manifest


# --------------------------------------------------------------------------- #
# The durable store
# --------------------------------------------------------------------------- #
class DurableStore(GraphStore):
    """A graph store checkpointed to a directory (see module docstring).

    Construct via :meth:`create` (fresh directory) or :meth:`open` (recover
    an existing one); the bare constructor wires no files.
    """

    def __init__(
        self,
        graph: Optional[Graph] = None,
        name: str = "",
        *,
        directory: str,
        fsync: "FsyncPolicy | str" = "always",
        base_version: int = 0,
        generation: int = 0,
    ):
        self.directory = os.path.abspath(directory)
        self._policy = FsyncPolicy.parse(fsync)
        self._generation = generation
        self._wal: Optional[WriteAheadLog] = None
        self._replaying = False
        self._last_checkpoint_at: Optional[float] = None
        #: Typing snapshots restored by :meth:`open`, for engine seeding.
        self.restored_typings: List[Dict[str, Any]] = []
        #: What :meth:`open` had to do: replayed/deduped record counts,
        #: torn-tail truncation, snapshot fallback.
        self.recovery: Dict[str, int] = {}
        super().__init__(graph, name, base_version=base_version)

    # ------------------------------------------------------------------ #
    # Write-ahead hook
    # ------------------------------------------------------------------ #
    def _wal_write(self, resolved: Delta) -> None:
        if self._replaying or self._wal is None:
            return
        self._wal.append(self._version + 1, codec.encode_delta(resolved))

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def _snapshot_path(self, generation: int) -> str:
        return os.path.join(self.directory, f"snapshot-{generation}.json")

    def _wal_path(self, generation: int) -> str:
        return os.path.join(self.directory, f"wal-{generation}.log")

    # ------------------------------------------------------------------ #
    # Creation
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        directory: str,
        graph: Optional[Graph] = None,
        name: str = "",
        fsync: "FsyncPolicy | str" = "always",
    ) -> "DurableStore":
        """Start a fresh durable store in ``directory`` (replacing any old one)."""
        os.makedirs(directory, exist_ok=True)
        for stale in glob.glob(os.path.join(directory, "snapshot-*.json")) + glob.glob(
            os.path.join(directory, "wal-*.log")
        ):
            os.remove(stale)
        manifest = os.path.join(directory, MANIFEST_NAME)
        if os.path.exists(manifest):
            os.remove(manifest)
        store = cls(graph, name, directory=directory, fsync=fsync)
        store.checkpoint()
        return store

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls, directory: str, fsync: "FsyncPolicy | str" = "always"
    ) -> "DurableStore":
        """Recover the store persisted in ``directory`` (see module docstring)."""
        directory = os.path.abspath(directory)
        with _obs_tracing.span("persist.open", directory=directory) as span:
            manifest = read_manifest(directory)
            manifest = _migrations.migrate(directory, manifest, write_manifest)
            snapshot, generation = cls._load_snapshot(
                directory, int(manifest.get("generation", 0))
            )
            if generation != manifest.get("generation"):
                manifest["generation"] = generation
                write_manifest(directory, manifest)

            graph = Graph(snapshot.get("name", ""))
            for encoded in snapshot.get("nodes", ()):
                graph.add_node(codec.decode_node(encoded))
            for source, label, target, occur in snapshot.get("edges", ()):
                graph.add_edge(
                    codec.decode_node(source),
                    label,
                    codec.decode_node(target),
                    codec.decode_occur(occur),
                )
            base = int(snapshot.get("base", snapshot["version"]))
            store = cls(
                graph,
                snapshot.get("name", ""),
                directory=directory,
                fsync=fsync,
                base_version=base,
                generation=generation,
            )
            # The persisted log tail (history *behind* the snapshot): the
            # graph is at snapshot["version"], the log spans [base, version].
            tail = [codec.decode_delta(entry) for entry in snapshot.get("log", ())]
            if len(tail) != snapshot["version"] - base:
                raise PersistError(
                    f"snapshot log tail has {len(tail)} entries for span "
                    f"[{base}, {snapshot['version']}] in {directory!r}"
                )
            store._log.extend(tail)
            store._version = int(snapshot["version"])
            store._maintainer_version = store._version
            store._last_checkpoint_at = snapshot.get("created_at")

            partition = snapshot.get("partition")
            if partition:
                kind_of = {
                    codec.decode_node(node): kind
                    for node, kind in partition["kind_of"]
                }
                store.restore_partition(kind_of, int(partition["epoch"]))
            for entry in snapshot.get("typings", ()):
                store.restored_typings.append(
                    {
                        "schema": entry["schema"],
                        "compressed": bool(entry["compressed"]),
                        "version": int(entry["version"]),
                        "typing": codec.decode_typing(entry["typing"]),
                        "kind_typing": (
                            codec.decode_typing(entry["kind_typing"])
                            if entry.get("kind_typing") is not None
                            else None
                        ),
                        "epoch": int(entry.get("epoch", -1)),
                    }
                )

            store._replay_wal(generation)
            span.annotate(
                generation=generation,
                version=store.version,
                replayed=store.recovery["replayed"],
                truncated=store.recovery["truncated"],
            )
            return store

    @staticmethod
    def _load_snapshot(directory: str, generation: int) -> Tuple[Dict[str, Any], int]:
        """The newest readable snapshot at or one below ``generation``."""
        for candidate in (generation, generation - 1):
            if candidate < 1:
                continue
            path = os.path.join(directory, f"snapshot-{candidate}.json")
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    snapshot = json.load(handle)
            except (FileNotFoundError, ValueError):
                continue
            if not isinstance(snapshot, dict) or "version" not in snapshot:
                continue
            fmt = int(snapshot.get("format", 1))
            if fmt > _migrations.CURRENT_FORMAT:
                raise PersistError(
                    f"snapshot {path!r} uses on-disk format {fmt}, newer than "
                    f"this build's format {_migrations.CURRENT_FORMAT}"
                )
            return snapshot, candidate
        raise PersistError(
            f"no usable snapshot in {directory!r} (manifest generation "
            f"{generation}) — cannot recover a store from a WAL alone"
        )

    def _replay_wal(self, generation: int) -> None:
        """Replay the generation's WAL tail into the freshly loaded store."""
        path = self._wal_path(generation)
        records, stats = _wal.recover(path)
        deduped = 0
        with _obs_tracing.span("persist.replay", records=len(records)):
            self._replaying = True
            try:
                for version, payload in records:
                    if version <= self._version:
                        deduped += 1  # duplicate tail record (crash mid-append)
                        continue
                    if version != self._version + 1:
                        raise PersistError(
                            f"WAL {path!r} jumps from version {self._version} "
                            f"to {version} — record sequence is broken"
                        )
                    try:
                        self.apply(codec.decode_delta(payload))
                    except GraphError as exc:
                        raise PersistError(
                            f"WAL {path!r} record for version {version} does "
                            f"not apply: {exc}"
                        ) from exc
            finally:
                self._replaying = False
        self._wal = WriteAheadLog(path, self._policy)
        # Report the full WAL content as "since last checkpoint": replayed
        # records are exactly the appends since the snapshot was cut.
        self._wal.records = stats["records"] - deduped
        self._wal.bytes = max(0, self._wal._good_offset - len(_wal.MAGIC))
        self.recovery = {
            "replayed": stats["records"] - deduped,
            "deduped": deduped,
            "truncated": stats["truncated"],
            "dropped_bytes": stats["dropped_bytes"],
        }

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def checkpoint(self, typings: Iterable[Dict[str, Any]] = ()) -> Dict[str, Any]:
        """Write the next generation's snapshot and rotate the WAL.

        ``typings`` is the output of
        :meth:`repro.engine.validation.ValidationEngine.export_typings`;
        entries older than the store's history floor are dropped, and the
        persisted delta-log tail is extended down to the oldest surviving
        entry so every persisted typing stays incrementally reachable after
        a restart.  Returns ``{"generation", "version", "wal_records_folded",
        "seconds"}``.
        """
        start = time.perf_counter()
        generation = self._generation + 1
        with _obs_tracing.span(
            "persist.checkpoint", generation=generation, version=self._version
        ):
            _faults.maybe_fail("persist.io")
            snapshot = self._snapshot_payload(list(typings))
            write_json_atomic(self._snapshot_path(generation), snapshot)
            fresh_wal = WriteAheadLog(self._wal_path(generation), self._policy)
            folded = self._wal.records if self._wal is not None else 0
            write_manifest(
                self.directory,
                {
                    "format": _migrations.CURRENT_FORMAT,
                    "name": self.name,
                    "generation": generation,
                },
            )
            if self._wal is not None:
                self._wal.close()
            self._wal = fresh_wal
            self._generation = generation
            self._last_checkpoint_at = time.time()
            self._prune(keep_from=generation - 1)
        seconds = time.perf_counter() - start
        _M_CHECKPOINTS.inc()
        _M_SNAPSHOT_SECONDS.observe(seconds)
        return {
            "generation": generation,
            "version": self._version,
            "wal_records_folded": folded,
            "seconds": seconds,
        }

    def _snapshot_payload(self, typings: List[Dict[str, Any]]) -> Dict[str, Any]:
        graph = self._graph
        usable = [
            entry
            for entry in typings
            if self._base <= entry["version"] <= self._version
        ]
        base = min([entry["version"] for entry in usable] + [self._version])
        tail = [
            codec.encode_delta(self._log[cursor - self._base].compact())
            for cursor in range(base, self._version)
        ]
        partition = None
        with self._view_lock:
            maintainer = self._maintainer
            if maintainer is not None and self._maintainer_version == self._version:
                partition = {
                    "kind_of": sorted(
                        (
                            [codec.encode_node(node), kind]
                            for node, kind in maintainer.kind_of.items()
                        ),
                        key=repr,
                    ),
                    "epoch": maintainer.epoch,
                }
        return {
            "format": _migrations.CURRENT_FORMAT,
            "name": self.name,
            "version": self._version,
            "base": base,
            "created_at": time.time(),
            "nodes": sorted((codec.encode_node(node) for node in graph.nodes), key=repr),
            "edges": sorted(
                (
                    [
                        codec.encode_node(edge.source),
                        edge.label,
                        codec.encode_node(edge.target),
                        codec.encode_occur(edge.occur),
                    ]
                    for edge in graph.edges
                ),
                key=repr,
            ),
            "log": tail,
            "partition": partition,
            "typings": [
                {
                    "schema": entry["schema"],
                    "compressed": entry["compressed"],
                    "version": entry["version"],
                    "typing": codec.encode_typing(entry["typing"]),
                    "kind_typing": (
                        codec.encode_typing(entry["kind_typing"])
                        if entry.get("kind_typing") is not None
                        else None
                    ),
                    "epoch": entry.get("epoch", -1),
                }
                for entry in usable
            ],
        }

    def _prune(self, keep_from: int) -> None:
        """Delete snapshot/WAL files of generations below ``keep_from``."""
        for entry in os.listdir(self.directory):
            match = _GEN_RE.match(entry)
            if match and int(match.group(1)) < keep_from:
                try:
                    os.remove(os.path.join(self.directory, entry))
                except OSError:
                    pass  # pruning is best-effort; next checkpoint retries

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        return self._generation

    def persist_status(self) -> Dict[str, Any]:
        """The persistence block of the daemon's per-graph ``status``."""
        return {
            "generation": self._generation,
            "format": _migrations.CURRENT_FORMAT,
            "fsync": str(self._policy),
            "wal_records": self._wal.records if self._wal is not None else 0,
            "wal_bytes": self._wal.bytes if self._wal is not None else 0,
            "last_checkpoint_at": self._last_checkpoint_at,
            "base_version": self._base,
        }

    def sync(self) -> None:
        """Force the WAL to disk regardless of the fsync policy."""
        if self._wal is not None:
            self._wal.sync()

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None


def persist_metrics_summary() -> Dict[str, int]:
    """Process-lifetime totals of the ``repro_persist_*`` counters.

    The view the daemon's ``metrics`` op exposes under ``"persist"`` —
    monotone registry reads, unaffected by anyone's stats windows.
    """
    registry = _obs_metrics.get_registry()
    return {
        "wal_appends": int(registry.value("repro_persist_wal_appends_total")),
        "wal_bytes": int(registry.value("repro_persist_wal_bytes_total")),
        "replayed_records": int(registry.value("repro_persist_replayed_records_total")),
        "truncated_tails": int(registry.value("repro_persist_truncated_tails_total")),
        "checkpoints": int(registry.value("repro_persist_checkpoints_total")),
    }
