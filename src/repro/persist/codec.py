"""JSON codec for the persistence layer.

Everything :mod:`repro.persist` writes to disk is JSON, but the in-memory
model is richer than JSON: node ids are arbitrary hashables (the clone
workloads use ``(copy_index, iri)`` tuples), occurrence intervals carry an
``∞`` upper bound, and typings map nodes to *sets* of type names.  This
module defines the lossless, deterministic encoding shared by snapshots and
the write-ahead log:

* **Nodes** — plain strings encode as themselves; every other supported
  value becomes a single-key tagged object: ``{"t": [...]}`` for tuples
  (recursively), ``{"i": n}`` for ints, ``{"b": x}`` for bools, ``{"f": x}``
  for floats, ``{"n": true}`` for ``None``.  Decoding is the exact inverse,
  so ``decode_node(encode_node(x)) == x`` and tuple node ids stay hashable.
* **Intervals** — a ``[lower, upper]`` pair with ``null`` for ``∞`` (the
  in-memory convention of :class:`repro.core.intervals.Interval` itself).
* **Deltas** — ``{"add": [[s, label, t, occur], ...], "remove": [...]}``
  with encoded endpoints, mirroring :meth:`repro.graphs.store.Delta.to_json`
  but safe for non-string node ids.
* **Typings** — sorted ``[[node, [type, ...]], ...]`` pair lists.

Encoding is deterministic (sorted pairs, sorted type lists), so identical
states produce byte-identical snapshots — handy for parity tests and for
content-comparison of generations.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.intervals import Interval
from repro.errors import PersistError
from repro.graphs.store import Delta
from repro.schema.typing import Typing

NodeId = Hashable


# --------------------------------------------------------------------------- #
# Nodes
# --------------------------------------------------------------------------- #
def encode_node(node: NodeId) -> Any:
    """Encode one node id as a JSON-safe value (see module docstring)."""
    if isinstance(node, str):
        return node
    if isinstance(node, bool):  # before int: bool is an int subclass
        return {"b": node}
    if isinstance(node, int):
        return {"i": node}
    if isinstance(node, float):
        return {"f": node}
    if node is None:
        return {"n": True}
    if isinstance(node, tuple):
        return {"t": [encode_node(part) for part in node]}
    raise PersistError(
        f"cannot persist node id of type {type(node).__name__}: {node!r}"
    )


def decode_node(value: Any) -> NodeId:
    """Inverse of :func:`encode_node`."""
    if isinstance(value, str):
        return value
    if isinstance(value, dict) and len(value) == 1:
        tag, payload = next(iter(value.items()))
        if tag == "t":
            return tuple(decode_node(part) for part in payload)
        if tag in ("i", "b", "f"):
            return payload
        if tag == "n":
            return None
    raise PersistError(f"cannot decode persisted node id: {value!r}")


# --------------------------------------------------------------------------- #
# Intervals
# --------------------------------------------------------------------------- #
def encode_occur(occur: Interval) -> List[Optional[int]]:
    return [occur.lower, occur.upper]


def decode_occur(pair: Any) -> Interval:
    if not isinstance(pair, (list, tuple)) or len(pair) != 2:
        raise PersistError(f"cannot decode persisted interval: {pair!r}")
    return Interval(pair[0], pair[1])


# --------------------------------------------------------------------------- #
# Deltas
# --------------------------------------------------------------------------- #
def _encode_entries(entries) -> List[list]:
    return [
        [encode_node(source), label, encode_node(target), encode_occur(occur)]
        for source, label, target, occur in entries
    ]


def _decode_entries(entries) -> Tuple[tuple, ...]:
    return tuple(
        (decode_node(source), label, decode_node(target), decode_occur(occur))
        for source, label, target, occur in entries
    )


def encode_delta(delta: Delta) -> Dict[str, list]:
    """Encode a :class:`Delta` with arbitrary (hashable) node ids."""
    return {
        "add": _encode_entries(delta.added),
        "remove": _encode_entries(delta.removed),
    }


def decode_delta(payload: Any) -> Delta:
    """Inverse of :func:`encode_delta`."""
    if not isinstance(payload, dict):
        raise PersistError(f"cannot decode persisted delta: {payload!r}")
    return Delta(
        added=_decode_entries(payload.get("add", ())),
        removed=_decode_entries(payload.get("remove", ())),
    )


# --------------------------------------------------------------------------- #
# Typings
# --------------------------------------------------------------------------- #
def encode_typing(typing: Typing) -> List[list]:
    """Encode a typing as a sorted ``[[node, [types...]], ...]`` pair list."""
    pairs = [
        [encode_node(node), sorted(types)]
        for node, types in typing.as_dict().items()
    ]
    pairs.sort(key=repr)
    return pairs


def decode_typing(pairs: Any) -> Typing:
    """Inverse of :func:`encode_typing`."""
    if not isinstance(pairs, list):
        raise PersistError(f"cannot decode persisted typing: {pairs!r}")
    return Typing({decode_node(node): tuple(types) for node, types in pairs})
