"""Durable warm-restarting stores: snapshot + WAL persistence (ISSUE 10).

Public surface:

* :class:`DurableStore` — a :class:`repro.graphs.store.GraphStore` persisted
  to a directory: atomic generational snapshots, a CRC32-checksummed
  write-ahead log with configurable fsync policy, and crash-safe recovery
  that truncates torn tails and replays through the incremental machinery.
* :class:`FsyncPolicy` / :class:`WriteAheadLog` — the WAL layer.
* :data:`CURRENT_FORMAT` and :mod:`repro.persist.migrations` — the on-disk
  format version and its ordered migration chain.
* :func:`persist_metrics_summary` — the ``repro_persist_*`` counter totals
  the daemon's ``metrics`` op exposes.
"""

from repro.persist.migrations import CURRENT_FORMAT
from repro.persist.store import (
    DurableStore,
    persist_metrics_summary,
    read_manifest,
    write_json_atomic,
    write_manifest,
)
from repro.persist.wal import FsyncPolicy, WriteAheadLog

__all__ = [
    "CURRENT_FORMAT",
    "DurableStore",
    "FsyncPolicy",
    "WriteAheadLog",
    "persist_metrics_summary",
    "read_manifest",
    "write_json_atomic",
    "write_manifest",
]
