"""Format 1: the initial graph-directory layout.

``MANIFEST.json`` + ``snapshot-<generation>.json`` + ``wal-<generation>.log``
with graph nodes/edges and the kind partition in the snapshot.  Nothing to
rewrite when coming from format 0 (an empty, just-created directory):
:meth:`DurableStore.create` writes format-1-or-later state directly, so this
migration only anchors the chain.
"""

from __future__ import annotations

TO_FORMAT = 1


def apply(directory: str, manifest: dict) -> None:
    manifest.setdefault("generation", 0)
