"""Format 2: snapshots carry the engine's typing snapshots.

Format-1 snapshots persisted the graph, delta log, and kind partition but
not the :class:`~repro.engine.validation.ValidationEngine` typing snapshots,
so a reopened daemon still paid one full retype per schema.  Format 2 adds a
``"typings"`` list to every snapshot (empty for migrated directories — the
first post-upgrade checkpoint fills it in).
"""

from __future__ import annotations

import glob
import json
import os

TO_FORMAT = 2


def apply(directory: str, manifest: dict) -> None:
    for path in sorted(glob.glob(os.path.join(directory, "snapshot-*.json"))):
        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        if "typings" in snapshot:
            continue
        snapshot["typings"] = []
        snapshot["format"] = TO_FORMAT
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, sort_keys=True, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
