"""Ordered on-disk format migrations for :mod:`repro.persist`.

The graph-directory ``MANIFEST.json`` records the on-disk format version it
was written with.  When :func:`repro.persist.store.DurableStore.open` finds
an older format, it runs every registered migration *above* that version, in
order, before loading anything — the snapshot/ordered-migration pattern of
the kuberdock exemplar (``updates/scripts/`` + ``kdmigrations/``) the
ROADMAP references.  A manifest written by a *newer* format than this build
understands is refused outright (clear error, no partial load): downgrades
are not supported.

Writing a migration:

1. add ``m{NNNN}_{slug}.py`` next to this file with ``TO_FORMAT = N`` and
   ``def apply(directory: str, manifest: dict) -> None`` that rewrites the
   directory's files in place (atomic writes, please — crash mid-migration
   must leave either the old or the new state);
2. append it to :data:`MIGRATIONS` below, keeping the list sorted;
3. bump :data:`CURRENT_FORMAT` to ``N``.

``apply`` may mutate ``manifest`` (sans ``format``); the runner persists the
manifest with the migration's ``TO_FORMAT`` after each successful step, so
an interrupted chain resumes exactly where it stopped.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import PersistError
from repro.persist.migrations import m0001_initial_layout, m0002_typing_snapshots

#: The on-disk format this build reads and writes.
CURRENT_FORMAT = 2

#: Every known migration, sorted by target format.
MIGRATIONS = (m0001_initial_layout, m0002_typing_snapshots)


def check_ordering() -> None:
    targets = [migration.TO_FORMAT for migration in MIGRATIONS]
    if targets != sorted(targets) or len(set(targets)) != len(targets):
        raise PersistError(f"migration chain out of order: {targets}")
    if targets[-1] != CURRENT_FORMAT:
        raise PersistError(
            f"migration chain ends at format {targets[-1]}, "
            f"but CURRENT_FORMAT is {CURRENT_FORMAT}"
        )


def pending(format_version: int) -> List[Any]:
    """The migrations needed to bring ``format_version`` up to date."""
    if format_version > CURRENT_FORMAT:
        raise PersistError(
            f"data directory uses on-disk format {format_version}, but this "
            f"build only understands up to format {CURRENT_FORMAT} — refusing "
            f"to load (upgrade the library or use a matching data directory)"
        )
    check_ordering()
    return [m for m in MIGRATIONS if m.TO_FORMAT > format_version]


def migrate(directory: str, manifest: Dict[str, Any], write_manifest) -> Dict[str, Any]:
    """Run every pending migration over ``directory``, persisting after each.

    ``write_manifest(directory, manifest)`` is injected by the caller (the
    store module owns atomic manifest writes).  Returns the final manifest.
    """
    for migration in pending(int(manifest.get("format", 0))):
        migration.apply(directory, manifest)
        manifest["format"] = migration.TO_FORMAT
        write_manifest(directory, manifest)
    return manifest
