"""Vectorised fixpoint rounds: bitset typing rows over CSR neighbourhoods.

The object kernel in :mod:`repro.engine.fixpoint` walks per-``(node, type)``
Python sets; this module re-represents one kernel run as arrays so a whole
refinement round executes as numpy ops:

* **Typing rows.**  The candidate relation is a ``(nodes, W)`` uint64 matrix
  (``W = ceil(|Γ| / 64)``): bit ``τ`` of row ``n`` means ``(n, type_order[τ])``
  is still a candidate.  Dirtiness is a second bitset of identical shape.

* **CSR neighbourhoods.**  Out-edges of the active nodes are flattened once
  per run into ``indptr``/``label``/``target``/``multiplicity`` arrays (and
  in-edges likewise, for dirtiness propagation), so a round gathers every
  dirty pair's neighbourhood with ``repeat``/``cumsum`` index arithmetic
  instead of per-node ``out_edges`` calls.

* **Hashed signatures.**  A pair's verdict depends only on its type and the
  multiset of ``(label[, multiplicity], candidate options)`` over its edges.
  Each edge contributes a pair of splitmix64-style 64-bit mixes; summing per
  pair (addition is commutative, matching multiset semantics) yields a
  128-bit key ``(τ, h₁, h₂)`` that coexists with the object kernel's
  structural keys in one shared ``signature_memo`` (int tuples cannot collide
  with its string tuples).  Only the unique keys of a round reach Python:
  memo lookups, plus one representative evaluation per genuinely new
  signature (``satisfies_type_groups`` for plain semantics, one batched
  :func:`repro.presburger.solver.solve_problems` call for compressed).

The schedule is synchronous Jacobi over the whole active set rather than the
object kernel's SCC-ordered Gauss-Seidel: chaotic iteration of the monotone
elimination operator reaches the same greatest fixpoint under any schedule,
which the parity suites assert against :mod:`repro.schema.reference`.  A
vectorised run therefore reports ``FixpointStats.components == 0`` (no
condensation is built).

``REPRO_VECTORIZE=0`` (or a missing numpy) routes every entry point back to
the object kernel — the pure-Python fallback stays the source of truth.
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, List, Optional, Set, Tuple

try:  # pragma: no cover - exercised implicitly on import
    import numpy as np

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None
    _HAVE_NUMPY = False

from repro.schema.typing import satisfies_type_groups

NodeId = Hashable

#: Environment flag gating the vectorised kernel (read per run).
ENV_FLAG = "REPRO_VECTORIZE"
_FALSEY = {"0", "false", "off", "no"}

# splitmix64 constants; distinct stream seeds keep plain and compressed edge
# hashes (and the two 64-bit halves of a key) statistically independent.
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15
_SEED_PLAIN = 0x51_7E_AD_5E_ED_00_00_01
_SEED_COMPRESSED = 0x51_7E_AD_5E_ED_00_00_02
_HALF_1 = 0xA5A5A5A5A5A5A5A5
_HALF_2 = 0xC3C3C3C3C3C3C3C3


def available() -> bool:
    """Whether numpy is importable in this process."""
    return _HAVE_NUMPY


def enabled() -> bool:
    """Whether kernel runs should use the vectorised schedule.

    True when numpy is available and ``REPRO_VECTORIZE`` is unset or truthy;
    consulted at every run so tests and the soak harness can toggle kernels
    mid-process.
    """
    if not _HAVE_NUMPY:
        return False
    return os.environ.get(ENV_FLAG, "1").strip().lower() not in _FALSEY


def _mix(values):
    """splitmix64 finaliser over a uint64 array (vectorised, wrapping)."""
    x = values + np.uint64(_GOLDEN)
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX_1)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX_2)
    x ^= x >> np.uint64(31)
    return x


def _segment_positions(starts, degrees, total):
    """Flat CSR positions of every (segment, local offset) pair.

    ``repeat(starts) + (arange(total) - repeat(segment_offsets))`` — the
    standard trick giving, for each expanded element, its index into the flat
    edge arrays without a Python loop.
    """
    offsets = np.concatenate(([0], np.cumsum(degrees)))
    local = np.arange(total, dtype=np.intp) - np.repeat(offsets[:-1], degrees)
    return np.repeat(starts, degrees) + local, offsets


def _segment_reduce(ufunc, values, offsets, degrees, empty):
    """Per-segment ``ufunc`` reduction of ``values`` laid out by ``offsets``.

    ``reduceat`` with two repairs for its empty-segment semantics: trailing
    empty segments (whose start index would fall past the end of ``values``)
    are cut off before the call, and empty segments in general — where
    ``reduceat`` returns ``values[start]`` instead of an identity — are
    overwritten with ``empty``.  Much faster than the equivalent unbuffered
    ``ufunc.at`` scatter on large rounds.
    """
    starts = offsets[:-1]
    count = starts.shape[0]
    total = values.shape[0]
    if count and starts[count - 1] >= total:
        valid = int(np.searchsorted(starts, total, side="left"))
        result = np.full(count, empty, dtype=values.dtype)
        if valid:
            result[:valid] = ufunc.reduceat(values, starts[:valid])
    else:
        result = ufunc.reduceat(values, starts)
    result[degrees == 0] = empty
    return result


class _Plan:
    """One run's flattened neighbourhood: CSR arrays over positional node ids.

    Active nodes occupy positions ``0..n_active-1`` (sorted by ``repr`` for
    determinism); *boundary* nodes — out-edge targets outside the active set,
    whose candidate types are read frozen — follow.  ``out_*`` arrays hold the
    active nodes' out-edges in CSR form (``label`` as an index into the
    schema's ``label_order``, with ``len(label_order)`` the unknown-label
    sentinel); ``in_*`` the active-to-active in-edges used for dirtiness
    propagation.  Plans for whole-graph runs are cached on the graph keyed by
    ``(graph.revision, schema fingerprint)``, so repeated full typings of an
    unchanged graph skip the Python flattening pass entirely.
    """

    __slots__ = (
        "active_list",
        "n_active",
        "boundary",
        "out_ptr",
        "out_label",
        "out_tgt",
        "out_mult",
        "in_ptr",
        "in_src",
        "in_label",
    )

    def __init__(self, graph, active_list: List[NodeId], label_index, sentinel: int):
        self.active_list = active_list
        n_active = self.n_active = len(active_list)
        position = {node: i for i, node in enumerate(active_list)}
        out_ptr: List[int] = [0]
        out_label: List[int] = []
        out_tgt: List[int] = []
        out_mult: List[int] = []
        boundary: List[NodeId] = []
        for node in active_list:
            for edge in graph.out_edges(node):
                tpos = position.get(edge.target)
                if tpos is None:
                    tpos = n_active + len(boundary)
                    position[edge.target] = tpos
                    boundary.append(edge.target)
                out_label.append(label_index.get(edge.label, sentinel))
                out_tgt.append(tpos)
                out_mult.append(edge.occur.lower)
            out_ptr.append(len(out_tgt))
        in_ptr: List[int] = [0]
        in_src: List[int] = []
        in_label: List[int] = []
        for node in active_list:
            for edge in graph.in_edges(node):
                spos = position.get(edge.source)
                if spos is not None and spos < n_active:
                    in_src.append(spos)
                    in_label.append(label_index.get(edge.label, sentinel))
            in_ptr.append(len(in_src))
        self.boundary = boundary
        self.out_ptr = np.asarray(out_ptr, dtype=np.intp)
        self.out_label = np.asarray(out_label, dtype=np.intp)
        self.out_tgt = np.asarray(out_tgt, dtype=np.intp)
        self.out_mult = np.asarray(out_mult, dtype=np.int64)
        self.in_ptr = np.asarray(in_ptr, dtype=np.intp)
        self.in_src = np.asarray(in_src, dtype=np.intp)
        self.in_label = np.asarray(in_label, dtype=np.intp)


def stabilise(
    graph,
    active,
    current: Dict[NodeId, Set],
    compiled,
    compressed: bool,
    signature_memo: Dict[Tuple, bool],
    stats,
) -> None:
    """Drive ``active`` to its greatest fixpoint with array rounds.

    ``active`` nodes are reseeded with the full relation ``Γ`` (both callers
    — full typing and incremental reseeding — want exactly that); nodes that
    ``active``'s out-edges reach outside the set are *boundary* nodes whose
    candidate types are read frozen from ``current`` and never re-examined,
    matching the object kernel's cross-region reads.  On return, ``current``
    holds the stabilised type set (a frozenset) of every active node.
    """
    from repro.engine.fixpoint import _assemble_problem  # circular at import time

    tables = compiled.dense_tables()
    type_order = tables.type_order
    type_count = len(type_order)
    if type_count == 0 or not active:
        for node in active:
            current[node] = frozenset()
        return
    words = tables.words
    label_index = compiled.label_index
    label_names = tables.label_order
    sentinel = len(label_names)

    # Whole-graph runs reuse the flattened plan while the graph (and schema)
    # are unchanged; partial (incremental) runs flatten their small region.
    plan: Optional[_Plan] = None
    cache_key = None
    if len(active) == graph.node_count:
        cache_key = (graph.revision, compiled.fingerprint)
        cached = getattr(graph, "_vectorized_plan", None)
        if cached is not None and cached[0] == cache_key:
            plan = cached[1]
    if plan is None:
        plan = _Plan(graph, sorted(active, key=repr), label_index, sentinel)
        if cache_key is not None:
            graph._vectorized_plan = (cache_key, plan)

    active_list = plan.active_list
    n_active = plan.n_active
    boundary = plan.boundary
    out_ptr_a = plan.out_ptr
    out_label_a = plan.out_label
    out_tgt_a = plan.out_tgt
    out_mult_a = plan.out_mult
    in_ptr_a = plan.in_ptr
    in_src_a = plan.in_src
    in_label_a = plan.in_label

    bits = np.zeros((n_active + len(boundary), words), dtype=np.uint64)
    bits[:n_active] = tables.full_mask
    type_index = compiled.type_index
    for offset, node in enumerate(boundary):
        row = bits[n_active + offset]
        for type_name in current.get(node, ()):
            t_pos = type_index.get(type_name)
            if t_pos is not None:
                row |= tables.bit_rows[t_pos]
    dirty = bits[:n_active].copy()

    word_of = tables.word_of
    shift_of = tables.shift_of
    option_masks = tables.option_masks
    watcher_masks = tables.watcher_masks
    keep_rows = ~tables.bit_rows  # (T, W): clear one type's bit
    seed = np.uint64(_SEED_COMPRESSED if compressed else _SEED_PLAIN)

    options_cache: Dict[bytes, Tuple] = {}

    def _options_of(row) -> Tuple:
        key = row.tobytes()
        names = options_cache.get(key)
        if names is None:
            names = tuple(
                type_order[t]
                for t in range(type_count)
                if (int(row[t >> 6]) >> (t & 63)) & 1
            )
            options_cache[key] = names
        return names

    while True:
        cand = dirty & bits[:n_active]
        rows = np.nonzero(cand.any(axis=1))[0]
        if rows.size == 0:
            break
        stats.rounds += 1
        member = (cand[rows][:, word_of] >> shift_of) & np.uint64(1)  # (D, T)
        pair_row, pair_type = np.nonzero(member)
        pair_node = rows[pair_row]
        dirty[rows] = 0
        pair_count = pair_node.size
        stats.checks += pair_count

        starts = out_ptr_a[pair_node]
        degrees = out_ptr_a[pair_node + 1] - starts
        total = int(degrees.sum())
        fail = np.zeros(pair_count, dtype=bool)
        acc1 = np.zeros(pair_count, dtype=np.uint64)
        acc2 = np.zeros(pair_count, dtype=np.uint64)
        labels = np.empty(0, dtype=np.intp)
        mults = np.empty(0, dtype=np.int64)
        options = np.empty((0, words), dtype=np.uint64)
        pair_offsets = np.zeros(pair_count + 1, dtype=np.intp)
        if total:
            edge_pos, pair_offsets = _segment_positions(starts, degrees, total)
            edge_pair = np.repeat(np.arange(pair_count, dtype=np.intp), degrees)
            labels = out_label_a[edge_pos]
            targets = out_tgt_a[edge_pos]
            options = bits[targets] & option_masks[pair_type[edge_pair], labels]
            empty = ~options.any(axis=1)
            if compressed:
                mults = out_mult_a[edge_pos]
                positive = mults > 0
                edge_fail = empty & positive
                contributes = positive & ~empty
            else:
                edge_fail = empty
                contributes = ~empty
            fail = _segment_reduce(
                np.logical_or, edge_fail, pair_offsets, degrees, False
            )
            hashed = _mix(labels.astype(np.uint64) + seed)
            if compressed:
                hashed = _mix(hashed ^ _mix(mults.astype(np.uint64)))
            for w in range(words):
                hashed = _mix(hashed ^ options[:, w])
            half1 = _mix(hashed ^ np.uint64(_HALF_1))
            half2 = _mix(hashed ^ np.uint64(_HALF_2))
            half1[~contributes] = 0
            half2[~contributes] = 0
            acc1 = _segment_reduce(np.add, half1, pair_offsets, degrees, 0)
            acc2 = _segment_reduce(np.add, half2, pair_offsets, degrees, 0)

        verdicts = np.zeros(pair_count, dtype=bool)
        ok = np.nonzero(~fail)[0]
        stats.shortcut_failures += pair_count - ok.size
        if ok.size:
            keys = np.empty((ok.size, 3), dtype=np.uint64)
            keys[:, 0] = pair_type[ok].astype(np.uint64)
            keys[:, 1] = acc1[ok]
            keys[:, 2] = acc2[ok]
            uniq, first, inverse = np.unique(
                keys, axis=0, return_index=True, return_inverse=True
            )
            inverse = inverse.reshape(-1)
            unique_verdicts = np.zeros(uniq.shape[0], dtype=bool)
            misses: List[int] = []
            miss_keys: List[Tuple[int, int, int]] = []
            for u in range(uniq.shape[0]):
                key = (int(uniq[u, 0]), int(uniq[u, 1]), int(uniq[u, 2]))
                known = signature_memo.get(key)
                if known is None:
                    misses.append(u)
                    miss_keys.append(key)
                else:
                    unique_verdicts[u] = known
            stats.signature_hits += ok.size - len(misses)
            if misses:
                problems = []
                for miss_pos, u in enumerate(misses):
                    representative = int(ok[int(first[u])])
                    type_name = type_order[int(pair_type[representative])]
                    artifact = compiled.type_artifact(type_name)
                    lo = int(pair_offsets[representative])
                    hi = int(pair_offsets[representative + 1])
                    if compressed:
                        descriptions = []
                        for j in range(lo, hi):
                            multiplicity = int(mults[j])
                            if multiplicity <= 0:
                                continue
                            descriptions.append(
                                (
                                    label_names[labels[j]],
                                    multiplicity,
                                    _options_of(options[j]),
                                )
                            )
                        problems.append(_assemble_problem(artifact, descriptions))
                    else:
                        groups: Dict[Tuple, int] = {}
                        for j in range(lo, hi):
                            group = (label_names[labels[j]], _options_of(options[j]))
                            groups[group] = groups.get(group, 0) + 1
                        verdict = bool(satisfies_type_groups(artifact, groups))
                        signature_memo[miss_keys[miss_pos]] = verdict
                        unique_verdicts[u] = verdict
                        problems.append(None)  # keep positions aligned
                if compressed:
                    from repro.presburger.solver import solve_problems

                    stats.solver_problems += len(problems)
                    solved = solve_problems(problems)
                    for u, key, verdict in zip(misses, miss_keys, solved):
                        signature_memo[key] = bool(verdict)
                        unique_verdicts[u] = bool(verdict)
            verdicts[ok] = unique_verdicts[inverse]

        removed = np.nonzero(~verdicts)[0]
        if removed.size == 0:
            continue
        stats.removals += removed.size
        removed_nodes = pair_node[removed]
        removed_types = pair_type[removed]
        np.bitwise_and.at(bits, removed_nodes, keep_rows[removed_types])
        if in_src_a.size:
            r_starts = in_ptr_a[removed_nodes]
            r_degrees = in_ptr_a[removed_nodes + 1] - r_starts
            r_total = int(r_degrees.sum())
            if r_total:
                r_pos, _ = _segment_positions(r_starts, r_degrees, r_total)
                r_owner = np.repeat(
                    np.arange(removed.size, dtype=np.intp), r_degrees
                )
                sources = in_src_a[r_pos]
                masks = watcher_masks[in_label_a[r_pos], removed_types[r_owner]]
                np.bitwise_or.at(dirty, sources, masks)

    unpack_cache: Dict[bytes, frozenset] = {}
    for i, node in enumerate(active_list):
        key = bits[i].tobytes()
        types = unpack_cache.get(key)
        if types is None:
            row = bits[i]
            types = frozenset(
                type_order[t]
                for t in range(type_count)
                if (int(row[t >> 6]) >> (t & 63)) & 1
            )
            unpack_cache[key] = types
        current[node] = types
