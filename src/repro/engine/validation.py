"""The batched, parallel, cache-aware validation engine.

:class:`ValidationEngine` turns the one-shot :func:`repro.schema.validation.validate`
into a service-shaped API:

* ``submit`` queues (graph, schema) jobs — plain or compressed semantics;
* ``run_batch`` executes every queued job through a pluggable backend
  (``serial`` / ``thread`` / ``process``), serving repeats from an LRU cache
  keyed by content fingerprints and compiling every distinct schema exactly
  once;
* the result is an :class:`repro.engine.jobs.EngineReport` whose per-job
  payloads are byte-identical across backends.

For single very large graphs, :func:`maximal_typing_chunked` additionally
parallelises *inside* one job: each refinement round partitions the node
frontier into chunks whose (node, type) checks are independent reads of the
current relation, evaluates the chunks through the executor, then applies all
removals at once (a Jacobi-style sweep — it reaches the same greatest fixpoint
as the sequential worklist because removals are monotone).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.base import BatchEngine
from repro.engine.compiled import (
    CompiledSchema,
    compile_schema,
    graph_fingerprint,
    schema_fingerprint,
)
from repro.engine.executors import SerialExecutor, chunked
from repro.engine.fixpoint import (
    FixpointStats,
    expand_kind_typing,
    kind_typing_for_view,
    maximal_typing_store,
    retype_incremental,
    retype_kinds_incremental,
)
from repro.engine.jobs import JobResult, Stopwatch, ValidationJob
from repro.graphs.graph import Graph
from repro.graphs.store import GraphStore
from repro.obs import metrics as _obs_metrics
from repro.obs import tracing as _obs_tracing
from repro.schema.shex import ShExSchema
from repro.schema.typing import Typing, predecessor_map, satisfies_type
from repro.schema.validation import (
    maximal_typing_compressed,
    satisfies_type_compressed,
    validate,
)

JobLike = Union[ValidationJob, Tuple[Graph, ShExSchema]]

_REGISTRY = _obs_metrics.get_registry()
_M_REVALIDATIONS = _REGISTRY.counter(
    "repro_engine_revalidations_total",
    "Store revalidations, by resolved mode (cached included).",
    labels=("mode",),
)
_M_REVALIDATE_SECONDS = _REGISTRY.histogram(
    "repro_engine_revalidate_seconds",
    "Wall time of one computed (non-cached) revalidation.",
)


def _payload_from_typing(
    graph: Graph, typing: Typing, compressed: bool
) -> Tuple[str, Dict]:
    """The deterministic (verdict, payload) pair for a computed typing.

    Shared by the batch path and the store-revalidation path, so both produce
    byte-identical cache entries for the same (graph, schema, semantics).
    """
    untyped = tuple(
        sorted(
            (node for node in graph.nodes if not typing.types_of(node)),
            key=repr,
        )
    )
    verdict = "valid" if not untyped else "invalid"
    payload = {
        "untyped_nodes": tuple(repr(node) for node in untyped),
        "typing": tuple(
            (repr(node), tuple(sorted(typing.types_of(node))))
            for node in sorted(graph.nodes, key=repr)
        ),
        "compressed": compressed,
    }
    return verdict, payload


def _validation_payload(job: ValidationJob, compiled: CompiledSchema) -> Tuple[str, Dict]:
    """Run one job to a deterministic (verdict, payload) pair."""
    if job.compressed:
        typing = maximal_typing_compressed(job.graph, job.schema, compiled=compiled)
    else:
        typing = validate(job.graph, job.schema, compiled=compiled).typing
    return _payload_from_typing(job.graph, typing, job.compressed)


@dataclass(frozen=True)
class RevalidationOutcome:
    """The outcome of one store revalidation.

    ``result`` is the usual deterministic :class:`repro.engine.jobs.JobResult`
    (cache-compatible with the batch path); the extra fields describe *how*
    the typing was obtained: ``version`` is the store version validated,
    ``mode`` one of ``cached`` / ``unchanged`` / ``incremental`` /
    ``kinds-incremental`` / ``full`` / ``kinds``, and for incremental runs
    ``frontier`` / ``affected`` are the delta-touched node (or kind) count
    and the size of the retyped region.
    """

    result: JobResult
    version: int
    mode: str
    frontier: int = 0
    affected: int = 0


def _process_worker(job: ValidationJob) -> Tuple[str, Dict]:
    """Module-level worker for the process backend (must be picklable).

    Receives the plain job; the schema is recompiled in the worker through the
    per-process intern table, so each distinct schema is compiled once per
    worker process rather than once per job.
    """
    return _validation_payload(job, compile_schema(job.schema))


class ValidationEngine(BatchEngine):
    """Batch validation with pluggable executors and a fingerprint-keyed cache.

    Usage::

        engine = ValidationEngine(backend="thread", max_workers=4)
        engine.submit(graph_a, schema)
        engine.submit(graph_b, schema, compressed=True)
        report = engine.run_batch()

    The engine may be reused across batches; the cache persists between them.
    """

    kind = "validation"

    #: How many (schema, store) typing snapshots to retain for incremental
    #: revalidation; least-recently refreshed snapshots are dropped first.
    TYPING_SNAPSHOTS = 64

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        cache_size: int = 1024,
        cache_dir: Optional[str] = None,
        cache_max_mb: Optional[float] = None,
        cache_ttl: Optional[float] = None,
    ):
        super().__init__(
            backend, max_workers, cache_size, cache_dir, cache_max_mb, cache_ttl
        )
        self._compiled: Dict[str, CompiledSchema] = {}
        # (schema fingerprint, store id, compressed) ->
        # (version, node Typing, kind Typing or None, view epoch):
        # the prior fixpoints that seed incremental revalidation.  The kind
        # typing (quotient-level, stable kind ids) is what makes the
        # compressed path incremental; the view epoch guards id reuse.
        self._typings: "OrderedDict[Tuple, Tuple[int, Typing, Optional[Typing], int]]" = (
            OrderedDict()
        )
        # schema fingerprint -> persistent (type, signature) -> verdict memo;
        # a verdict is a pure function of its key, so carrying the memo
        # across revalidations of the same schema is sound and makes repeated
        # small-delta checks answer almost entirely from memory.
        self._signature_memos: Dict[str, Dict[Tuple, bool]] = {}
        # The short-held lock guards the bookkeeping dicts; the per-token
        # locks serialise computation per (schema, store, semantics) so
        # revalidations of unrelated stores run concurrently.
        self._revalidate_lock = threading.Lock()
        self._token_locks: Dict[Tuple, threading.Lock] = {}

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def compile(self, schema: Union[ShExSchema, CompiledSchema]) -> CompiledSchema:
        """Compile a schema, interning by content fingerprint within the engine."""
        if isinstance(schema, CompiledSchema):
            self._compiled.setdefault(schema.fingerprint, schema)
            return schema
        fingerprint = schema_fingerprint(schema)
        compiled = self._compiled.get(fingerprint)
        if compiled is None:
            compiled = CompiledSchema(schema)
            self._compiled[fingerprint] = compiled
        return compiled

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        graph: Graph,
        schema: Union[ShExSchema, CompiledSchema],
        compressed: bool = False,
        label: str = "",
    ) -> int:
        """Queue one job; returns its index within the next batch."""
        compiled = self.compile(schema)
        self._pending.append(
            ValidationJob(graph=graph, schema=compiled.schema, compressed=compressed, label=label)
        )
        return len(self._pending) - 1

    # ------------------------------------------------------------------ #
    # Store revalidation (incremental path)
    # ------------------------------------------------------------------ #
    def revalidate(
        self,
        store: GraphStore,
        schema: Union[ShExSchema, CompiledSchema],
        compressed: bool = False,
        label: str = "",
    ) -> RevalidationOutcome:
        """Validate the current version of a :class:`repro.graphs.store.GraphStore`.

        The engine keeps, per (schema, store), the typing of the last version
        it validated — node-level, plus the quotient's kind-level typing when
        the store's kind-compression view is active.  A later call re-derives
        only what the change can touch: with an active view, the composed
        :meth:`repro.graphs.store.GraphStore.view_delta` seeds
        :func:`repro.engine.fixpoint.retype_kinds_incremental` and only kinds
        reaching a changed quotient row are retyped (``mode
        "kinds-incremental"``); otherwise the edge delta seeds
        :func:`repro.engine.fixpoint.retype_incremental` on the plain graph.
        First encounters run a full typing through the view when present
        (:func:`repro.engine.fixpoint.maximal_typing_store`).  Results are
        also pushed through the regular fingerprint-keyed result cache, so a
        store whose content matches an earlier job — any store, any version —
        is answered without computing at all (``mode="cached"``).

        Revalidation always computes in the calling thread (a typing snapshot
        cannot usefully cross an executor boundary); the configured backend
        still applies to ``run_batch``.  Concurrent revalidations of the
        *same* (schema, store, semantics) serialise on a per-token lock;
        unrelated stores and schemas proceed in parallel.  The caller must
        not mutate ``store`` while its revalidation runs (the daemon holds a
        per-store lock across ``update_graph``/``revalidate`` for this).
        """
        compiled = self.compile(schema)
        token = (compiled.fingerprint, store.store_id, compressed)
        with self._revalidate_lock:
            token_lock = self._token_locks.setdefault(token, threading.Lock())
            if len(self._token_locks) > 4 * self.TYPING_SNAPSHOTS:
                # Locks are tiny; prune strays for abandoned stores.
                self._token_locks = {token: token_lock}
        with token_lock:
            key = ("validation", compiled.fingerprint, store.fingerprint(), compressed)
            found, value = self.cache.get(key)
            if found:
                verdict, payload = value
                _M_REVALIDATIONS.labels(mode="cached").inc()
                return RevalidationOutcome(
                    result=JobResult(
                        index=0, kind=self.kind, label=label, key=key,
                        verdict=verdict, payload=payload, seconds=0.0, cached=True,
                    ),
                    version=store.version,
                    mode="cached",
                )
            with self._revalidate_lock:
                snapshot = self._typings.get(token)
                memo = self._signature_memos.setdefault(compiled.fingerprint, {})
                if len(memo) > 65536:  # a runaway-signature backstop, not an LRU
                    memo.clear()
            stats = FixpointStats()
            with Stopwatch() as clock, _obs_tracing.span(
                "engine.revalidate", compressed=compressed, version=store.version
            ) as trace_span:
                # Syncing the view also maintains the kind partition under
                # the delta (the store's cost, paid once per version); the
                # view serves the plain semantics only.
                view = store.typing_view() if not compressed else None
                kind_typing: Optional[Typing] = None
                if snapshot is not None and snapshot[0] == store.version:
                    typing = snapshot[1]
                    kind_typing = snapshot[2]
                    stats.mode = "unchanged"
                elif view is not None:
                    view_delta = None
                    if (
                        snapshot is not None
                        and snapshot[0] <= store.version
                        and snapshot[2] is not None
                        and snapshot[3] == store.view_epoch
                    ):
                        view_delta = store.view_delta(snapshot[0], store.version)
                    if view_delta is not None:
                        # The compressed path, end-to-end incremental: only
                        # kinds reaching a changed quotient row are retyped.
                        kind_typing = retype_kinds_incremental(
                            view, snapshot[2], view_delta, compiled=compiled,
                            stats=stats, signature_memo=memo,
                        )
                    else:
                        kind_typing = kind_typing_for_view(
                            view, compiled, stats=stats, signature_memo=memo
                        )
                    typing = expand_kind_typing(view, kind_typing)
                elif snapshot is not None and snapshot[0] <= store.version:
                    typing = retype_incremental(
                        store, snapshot[1], store.diff(snapshot[0], store.version),
                        compiled=compiled, compressed=compressed, stats=stats,
                        signature_memo=memo,
                    )
                else:
                    typing = maximal_typing_store(
                        store, compiled=compiled, compressed=compressed, stats=stats,
                        signature_memo=memo,
                    )
                verdict, payload = _payload_from_typing(store.graph, typing, compressed)
                trace_span.annotate(mode=stats.mode)
            _M_REVALIDATIONS.labels(mode=stats.mode).inc()
            _M_REVALIDATE_SECONDS.observe(clock.seconds)
            with self._revalidate_lock:
                self._typings[token] = (
                    store.version, typing, kind_typing, store.view_epoch
                )
                self._typings.move_to_end(token)
                while len(self._typings) > self.TYPING_SNAPSHOTS:
                    self._typings.popitem(last=False)
            self.cache.put(key, (verdict, payload))
            return RevalidationOutcome(
                result=JobResult(
                    index=0, kind=self.kind, label=label, key=key,
                    verdict=verdict, payload=payload, seconds=clock.seconds,
                    cached=False,
                ),
                version=store.version,
                mode=stats.mode,
                frontier=stats.frontier,
                affected=stats.affected,
            )

    # ------------------------------------------------------------------ #
    # Typing snapshot export / import (persistence support)
    # ------------------------------------------------------------------ #
    def export_typings(self, store: GraphStore) -> List[Dict[str, object]]:
        """The engine's typing snapshots bound to ``store``, for persistence.

        Each entry carries the schema fingerprint, semantics flag, snapshot
        version, the node-level :class:`Typing`, the kind-level typing (or
        ``None``), and the partition epoch the kind typing was keyed under —
        exactly what :meth:`seed_typing` needs to warm a fresh engine after
        a restart.  Entries are plain objects; the persistence codec owns
        their JSON form.
        """
        with self._revalidate_lock:
            items = list(self._typings.items())
        return [
            {
                "schema": fingerprint,
                "compressed": compressed,
                "version": version,
                "typing": typing,
                "kind_typing": kind_typing,
                "epoch": epoch,
            }
            for (fingerprint, store_id, compressed), (
                version,
                typing,
                kind_typing,
                epoch,
            ) in items
            if store_id == store.store_id
        ]

    def seed_typing(
        self,
        store: GraphStore,
        schema: Union[ShExSchema, CompiledSchema],
        typing: Typing,
        version: int,
        compressed: bool = False,
        kind_typing: Optional[Typing] = None,
        epoch: int = -1,
    ) -> None:
        """Install a persisted typing snapshot for ``(schema, store)``.

        Called once per restored snapshot entry after a warm restart, before
        the first :meth:`revalidate` — which then runs incrementally from
        ``version`` instead of retyping the world.  ``version`` must not
        exceed the store's current version and must be reachable by
        :meth:`GraphStore.diff` (i.e. at or above its ``base_version``).
        """
        if not store.base_version <= version <= store.version:
            raise ValueError(
                f"typing snapshot version {version} is outside the store's "
                f"history [{store.base_version}, {store.version}]"
            )
        compiled = self.compile(schema)
        token = (compiled.fingerprint, store.store_id, compressed)
        with self._revalidate_lock:
            self._typings[token] = (version, typing, kind_typing, epoch)
            self._typings.move_to_end(token)
            while len(self._typings) > self.TYPING_SNAPSHOTS:
                self._typings.popitem(last=False)

    # ------------------------------------------------------------------ #
    # BatchEngine hooks
    # ------------------------------------------------------------------ #
    def _coerce_job(self, job: JobLike) -> ValidationJob:
        if isinstance(job, ValidationJob):
            return job
        graph, schema = job
        return ValidationJob(graph=graph, schema=schema)

    def _key_job(self, job: ValidationJob, memo: Dict) -> Tuple:
        # Fingerprints are memoized by object identity for the duration of one
        # batch: a manifest validating one graph against fifty schemas (or one
        # schema against fifty graphs) hashes each object once, not per job.
        # The memo is per-batch on purpose — graphs are mutable, so identity
        # says nothing about content across run_batch calls.
        schema_key = ("schema", id(job.schema))
        schema_fp = memo.get(schema_key)
        if schema_fp is None:
            schema_fp = self.compile(job.schema).fingerprint
            memo[schema_key] = schema_fp
        graph_key = ("graph", id(job.graph))
        graph_fp = memo.get(graph_key)
        if graph_fp is None:
            graph_fp = graph_fingerprint(job.graph)
            memo[graph_key] = graph_fp
        return ("validation", schema_fp, graph_fp, job.compressed)

    def _execute_single(self, job: ValidationJob) -> Tuple[str, Dict]:
        return _validation_payload(job, self.compile(job.schema))

    _job_worker = staticmethod(_process_worker)


# --------------------------------------------------------------------------- #
# Intra-job parallelism: chunked frontier refinement
# --------------------------------------------------------------------------- #
def maximal_typing_chunked(
    graph: Graph,
    schema: ShExSchema,
    compiled: Optional[CompiledSchema] = None,
    executor=None,
    chunk_size: int = 64,
    compressed: bool = False,
) -> Typing:
    """Maximal typing by synchronous rounds over a chunked node frontier.

    Each round checks every (node, type) pair of the current frontier against a
    *frozen* snapshot of the relation — chunks only read shared state, so they
    can run on the serial or thread executor — then applies all discovered
    removals at once and builds the next frontier from the predecessors of the
    shrunk nodes.  This Jacobi-style sweep removes (possibly) fewer pairs per
    round than the sequential worklist but converges to the same greatest
    fixpoint.

    The process backend is rejected: chunk work closes over the shared typing
    relation, which cannot cross a process boundary (use job-level parallelism
    through :class:`ValidationEngine` instead).
    """
    if executor is not None and getattr(executor, "name", "") == "process":
        raise ValueError(
            "maximal_typing_chunked requires a shared-memory executor "
            "(serial or thread); use ValidationEngine for process-level parallelism"
        )
    compiled = compile_schema(schema) if compiled is None else compiled
    artifacts = {
        type_name: compiled.type_artifact(type_name) for type_name in schema.types
    }
    if compressed:
        def check(node, type_name, current) -> bool:
            return satisfies_type_compressed(
                graph, node, type_name, schema, current, artifact=artifacts[type_name]
            )
    else:
        def check(node, type_name, current) -> bool:
            return satisfies_type(
                graph, node, type_name, schema, current, artifact=artifacts[type_name]
            )

    executor = executor or SerialExecutor()
    current = {node: set(schema.types) for node in graph.nodes}
    predecessors = predecessor_map(graph)
    frontier = sorted(graph.nodes, key=repr)
    while frontier:
        def check_chunk(nodes) -> List[Tuple[object, str]]:
            removals = []
            for node in nodes:
                for type_name in sorted(current[node]):
                    if not check(node, type_name, current):
                        removals.append((node, type_name))
            return removals

        chunk_results = executor.map_ordered(check_chunk, chunked(frontier, chunk_size))
        next_frontier = set()
        for node, type_name in (pair for chunk in chunk_results for pair in chunk):
            if type_name in current[node]:
                current[node].discard(type_name)
                next_frontier |= predecessors[node]
        frontier = sorted(next_frontier, key=repr)
    return Typing(current)
