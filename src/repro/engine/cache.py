"""Result caches: a thread-safe in-memory LRU and a persistent disk backend.

The engines key these caches by content fingerprints of the job inputs (see
:func:`repro.engine.compiled.schema_fingerprint` /
:func:`repro.engine.compiled.graph_fingerprint`), so identical jobs — the same
schema and data loaded twice, or re-submitted across batches — are answered
without recomputation, regardless of object identity.

:class:`LRUCache` is the default, process-local backend.
:class:`DiskResultCache` layers the same interface over a directory of
pickled entries, so verdicts survive process restarts: a nightly batch, a
redeployed daemon, or two CLI invocations pointing at the same
``--cache-dir`` share results.  Because keys are *content* fingerprints, a
stale entry can only be produced by a hash collision — entries never need
invalidation when files are re-parsed or objects rebuilt.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Tuple


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} evictions={self.evictions} "
            f"size={self.size}/{self.max_size} hit-rate={self.hit_rate:.1%}"
        )


class LRUCache:
    """Least-recently-used mapping with bounded size and usage counters.

    ``max_size <= 0`` disables caching entirely (every lookup is a miss and
    nothing is stored), which keeps the engine code path uniform.
    """

    _MISSING = object()

    def __init__(self, max_size: int = 1024):
        self.max_size = max_size
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(found, value)``; a hit refreshes the entry's recency."""
        with self._lock:
            value = self._entries.get(key, self._MISSING)
            if value is self._MISSING:
                self._misses += 1
                return False, None
            self._entries.move_to_end(key)
            self._hits += 1
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the least-recent overflow."""
        if self.max_size <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept; they describe the lifetime)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        """A consistent snapshot of the usage counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_size=self.max_size,
            )


class DiskResultCache:
    """A persistent result cache: one pickled file per content-fingerprint key.

    Drop-in for :class:`LRUCache` in the engines (same
    ``get``/``put``/``clear``/``stats`` contract) with two levels:

    * a bounded in-memory LRU front (``memory_size`` entries) absorbing the
      hot keys of the current process;
    * the directory, unbounded, shared by every process pointed at it and
      surviving restarts.

    Entries are written atomically (temp file + ``os.replace``), so
    concurrent writers — parallel CLI runs, a daemon plus a batch job — can
    share a directory: the worst race rewrites an identical entry.  An
    unreadable or truncated file is treated as a miss and deleted.  Select it
    with ``cache_dir=...`` on the engines, ``--cache-dir`` on the
    ``shex-containment batch`` / ``shex-serve start`` CLIs, or the daemon's
    ``cache_dir`` config field.
    """

    _SUFFIX = ".result.pkl"

    def __init__(self, directory: str, memory_size: int = 1024):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._memory = LRUCache(memory_size)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        # Entry count, maintained incrementally: stats() runs on every batch
        # report and daemon status request, so it must not rescan the
        # directory.  The count is exact for this process and approximate
        # when other processes write the same directory concurrently.
        self._disk_entries = self._scan_disk()

    def _scan_disk(self) -> int:
        return sum(
            1 for name in os.listdir(self.directory) if name.endswith(self._SUFFIX)
        )

    def _path(self, key: Hashable) -> str:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return os.path.join(self.directory, digest + self._SUFFIX)

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(found, value)``; disk hits are promoted into the memory front."""
        found, value = self._memory.get(key)
        if found:
            with self._lock:
                self._hits += 1
            return True, value
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            # A torn or stale entry: drop it and recompute.
            try:
                os.unlink(path)
                with self._lock:
                    self._disk_entries = max(self._disk_entries - 1, 0)
            except OSError:
                pass
            with self._lock:
                self._misses += 1
            return False, None
        self._memory.put(key, value)
        with self._lock:
            self._hits += 1
        return True, value

    def put(self, key: Hashable, value: Any) -> None:
        """Store in memory and persist to disk atomically.

        Persistence failures — disk errors *and* unpicklable values — are
        swallowed: the entry simply stays memory-only, and the temp file is
        always cleaned up.
        """
        self._memory.put(key, value)
        path = self._path(key)
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=self.directory, suffix=".tmp", delete=False
        )
        persisted = False
        try:
            with handle:
                pickle.dump(value, handle)
            existed = os.path.exists(path)
            os.replace(handle.name, path)
            persisted = True
            if not existed:
                with self._lock:
                    self._disk_entries += 1
        except (OSError, pickle.PicklingError, TypeError):
            pass
        finally:
            if not persisted:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass

    def clear(self) -> None:
        """Drop the memory front and delete every persisted entry (and any
        orphaned temp files left by crashed writers)."""
        self._memory.clear()
        with self._lock:
            for name in os.listdir(self.directory):
                if name.endswith(self._SUFFIX) or name.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(self.directory, name))
                    except OSError:
                        pass
            self._disk_entries = 0

    def __len__(self) -> int:
        """The number of entries persisted on disk (exact: rescans the
        directory; use ``stats().size`` for the cheap tracked count)."""
        return self._scan_disk()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._memory or os.path.exists(self._path(key))

    def stats(self) -> CacheStats:
        """Combined counters: a hit is a hit whether memory or disk served it.

        ``size`` is the incrementally tracked disk-entry count — O(1), not a
        directory scan — so it may drift from other processes' concurrent
        writes to a shared directory.
        """
        memory = self._memory.stats()
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=memory.evictions,
                size=self._disk_entries,
                max_size=memory.max_size,
            )
