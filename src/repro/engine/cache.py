"""Result caches: a thread-safe in-memory LRU and a persistent disk backend.

The engines key these caches by content fingerprints of the job inputs (see
:func:`repro.engine.compiled.schema_fingerprint` /
:func:`repro.engine.compiled.graph_fingerprint`), so identical jobs — the same
schema and data loaded twice, or re-submitted across batches — are answered
without recomputation, regardless of object identity.

:class:`LRUCache` is the default, process-local backend.
:class:`DiskResultCache` layers the same interface over a directory of
pickled entries, so verdicts survive process restarts: a nightly batch, a
redeployed daemon, or two CLI invocations pointing at the same
``--cache-dir`` share results.  Because keys are *content* fingerprints, a
stale entry can only be produced by a hash collision — entries never need
invalidation when files are re-parsed or objects rebuilt.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

from repro import faults as _faults
from repro.obs import logs as _obs_logs

_LOG = logging.getLogger("repro.engine.cache")


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} evictions={self.evictions} "
            f"size={self.size}/{self.max_size} hit-rate={self.hit_rate:.1%}"
        )


class LRUCache:
    """Least-recently-used mapping with bounded size and usage counters.

    ``max_size <= 0`` disables caching entirely (every lookup is a miss and
    nothing is stored), which keeps the engine code path uniform.
    """

    _MISSING = object()

    def __init__(self, max_size: int = 1024):
        self.max_size = max_size
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(found, value)``; a hit refreshes the entry's recency."""
        with self._lock:
            value = self._entries.get(key, self._MISSING)
            if value is self._MISSING:
                self._misses += 1
                return False, None
            self._entries.move_to_end(key)
            self._hits += 1
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the least-recent overflow."""
        if self.max_size <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept; they describe the lifetime)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        """A consistent snapshot of the usage counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_size=self.max_size,
            )


class DiskResultCache:
    """A persistent result cache: one pickled file per content-fingerprint key.

    Drop-in for :class:`LRUCache` in the engines (same
    ``get``/``put``/``clear``/``stats`` contract) with two levels:

    * a bounded in-memory LRU front (``memory_size`` entries) absorbing the
      hot keys of the current process;
    * the directory, shared by every process pointed at it and surviving
      restarts, kept in check by two optional hygiene bounds.

    ``max_bytes`` caps the directory's total persisted size: when a write
    pushes past the bound, the oldest entries (by modification time) are
    evicted until it fits again.  ``ttl_seconds`` expires entries by age: an
    expired file is deleted on lookup (counted as a miss) and swept at
    start-up.  Both are *space hygiene*, not invalidation — keys are content
    fingerprints, so entries never go semantically stale; the in-memory front
    is unaffected.  Configure them with ``cache_max_mb`` / ``cache_ttl`` on
    the engines and the daemon, or ``--cache-max-mb`` / ``--cache-ttl`` on the
    ``shex-containment batch`` and ``shex-serve start`` CLIs.

    Entries are written atomically (temp file + ``os.replace``), so
    concurrent writers — parallel CLI runs, a daemon plus a batch job — can
    share a directory: the worst race rewrites an identical entry.  An
    unreadable or truncated file is treated as a miss and moved into the
    directory's ``quarantine/`` subfolder (counted and logged, never served,
    never retried) so a recurring corruption source stays diagnosable.
    Orphaned ``*.tmp`` files left by a crashed writer are swept when the
    directory is opened.  Select it with ``cache_dir=...`` on the engines,
    ``--cache-dir`` on the ``shex-containment batch`` / ``shex-serve start``
    CLIs, or the daemon's ``cache_dir`` config field.
    """

    _SUFFIX = ".result.pkl"
    _QUARANTINE = "quarantine"

    def __init__(
        self,
        directory: str,
        memory_size: int = 1024,
        max_bytes: Optional[int] = None,
        ttl_seconds: Optional[float] = None,
    ):
        self.directory = directory
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        os.makedirs(directory, exist_ok=True)
        self._memory = LRUCache(memory_size)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions_disk = 0
        self._quarantined = 0
        self._tmp_swept = self._sweep_tmp()
        if ttl_seconds is not None:
            self._sweep_expired()
        # Entry and byte counts, maintained incrementally: stats() runs on
        # every batch report and daemon status request, so it must not rescan
        # the directory.  The counts are exact for this process and
        # approximate when other processes write the same directory
        # concurrently.
        self._disk_entries, self._disk_bytes = self._scan_disk()
        if self.max_bytes is not None:
            self._evict_over_budget()

    def _entry_paths(self):
        for name in os.listdir(self.directory):
            if name.endswith(self._SUFFIX):
                yield os.path.join(self.directory, name)

    def _sweep_tmp(self) -> int:
        """Delete orphaned ``*.tmp`` files left behind by a crashed writer.

        Run once when the directory is opened; anything still ``.tmp`` at
        that point lost its writer (live writers hold a fresh
        ``NamedTemporaryFile`` and rename or unlink it before returning).
        """
        swept = 0
        for name in os.listdir(self.directory):
            if not name.endswith(".tmp"):
                continue
            try:
                os.unlink(os.path.join(self.directory, name))
                swept += 1
            except OSError:
                pass
        if swept:
            _obs_logs.log_event(
                _LOG, logging.INFO, "cache_tmp_swept",
                directory=self.directory, swept=swept,
            )
        return swept

    def _quarantine_entry(self, path: str, reason: str) -> None:
        """Move one corrupt entry out of circulation instead of serving it.

        The file lands in ``quarantine/`` under its original name (keeping
        the incremental size counts honest), one structured log line records
        the move, and :meth:`quarantined` / the ``repro_cache_*`` collector
        expose the running count.  A failed move falls back to deletion so a
        poisoned entry can never be served either way.
        """
        quarantine_dir = os.path.join(self.directory, self._QUARANTINE)
        try:
            size = os.stat(path).st_size
            os.makedirs(quarantine_dir, exist_ok=True)
            os.replace(path, os.path.join(quarantine_dir, os.path.basename(path)))
        except OSError:
            self._unlink_entry(path)
            with self._lock:
                self._quarantined += 1
            return
        with self._lock:
            self._disk_entries = max(self._disk_entries - 1, 0)
            self._disk_bytes = max(self._disk_bytes - size, 0)
            self._quarantined += 1
        _obs_logs.log_event(
            _LOG, logging.WARNING, "cache_entry_quarantined",
            path=path, reason=reason,
        )

    def _scan_disk(self) -> Tuple[int, int]:
        entries = 0
        total = 0
        for path in self._entry_paths():
            try:
                total += os.stat(path).st_size
            except OSError:
                continue
            entries += 1
        return entries, total

    def _unlink_entry(self, path: str) -> None:
        """Delete one persisted entry, keeping the incremental counts honest."""
        try:
            size = os.stat(path).st_size
            os.unlink(path)
        except OSError:
            return
        with self._lock:
            self._disk_entries = max(self._disk_entries - 1, 0)
            self._disk_bytes = max(self._disk_bytes - size, 0)

    def _expired(self, path: str) -> bool:
        if self.ttl_seconds is None:
            return False
        try:
            return time.time() - os.stat(path).st_mtime > self.ttl_seconds
        except OSError:
            return False

    def _sweep_expired(self) -> int:
        """Delete every entry older than the TTL; returns how many went."""
        swept = 0
        for path in list(self._entry_paths()):
            if self._expired(path):
                try:
                    os.unlink(path)
                    swept += 1
                except OSError:
                    pass
        return swept

    def _evict_over_budget(self) -> int:
        """Evict oldest-first until the directory fits ``max_bytes``."""
        if self.max_bytes is None:
            return 0
        with self._lock:
            over = self._disk_bytes > self.max_bytes
        if not over:
            return 0
        aged = []
        for path in self._entry_paths():
            try:
                status = os.stat(path)
            except OSError:
                continue
            aged.append((status.st_mtime, status.st_size, path))
        aged.sort()
        evicted = 0
        for _mtime, _size, path in aged:
            with self._lock:
                if self._disk_bytes <= self.max_bytes:
                    break
            self._unlink_entry(path)
            evicted += 1
        with self._lock:
            self._evictions_disk += evicted
        return evicted

    def _path(self, key: Hashable) -> str:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return os.path.join(self.directory, digest + self._SUFFIX)

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(found, value)``; disk hits are promoted into the memory front.

        With a TTL configured, an entry past its age is deleted and reported
        as a miss instead of being served.
        """
        found, value = self._memory.get(key)
        if found:
            with self._lock:
                self._hits += 1
            return True, value
        path = self._path(key)
        if self._expired(path):
            self._unlink_entry(path)
            with self._lock:
                self._misses += 1
            return False, None
        try:
            _faults.maybe_fail("cache.io")
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return False, None
        except _faults.InjectedIOError:
            # An injected transient disk error: recover by treating the
            # lookup as a miss; the entry itself is intact.
            with self._lock:
                self._misses += 1
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
            # A torn or stale entry: quarantine it and recompute.
            self._quarantine_entry(path, f"{type(exc).__name__}: {exc}")
            with self._lock:
                self._misses += 1
            return False, None
        self._memory.put(key, value)
        with self._lock:
            self._hits += 1
        return True, value

    def put(self, key: Hashable, value: Any) -> None:
        """Store in memory and persist to disk atomically.

        Persistence failures — disk errors *and* unpicklable values — are
        swallowed: the entry simply stays memory-only, and the temp file is
        always cleaned up.
        """
        self._memory.put(key, value)
        path = self._path(key)
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=self.directory, suffix=".tmp", delete=False
        )
        persisted = False
        try:
            with handle:
                _faults.maybe_fail("cache.io")
                pickle.dump(value, handle)
                if _faults.should_fire("cache.corrupt"):
                    # Simulate a torn write: truncate the payload so a cold
                    # read later must take the quarantine path.
                    handle.truncate(max(1, handle.tell() // 2))
            try:
                previous = os.stat(path).st_size
            except OSError:
                previous = None
            written = os.stat(handle.name).st_size
            os.replace(handle.name, path)
            persisted = True
            with self._lock:
                if previous is None:
                    self._disk_entries += 1
                    self._disk_bytes += written
                else:
                    self._disk_bytes += written - previous
        except (OSError, pickle.PicklingError, TypeError):
            pass
        finally:
            if not persisted:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
        if persisted and self.max_bytes is not None:
            self._evict_over_budget()

    def clear(self) -> None:
        """Drop the memory front and delete every persisted entry (and any
        orphaned temp files left by crashed writers)."""
        self._memory.clear()
        with self._lock:
            for name in os.listdir(self.directory):
                if name.endswith(self._SUFFIX) or name.endswith(".tmp"):
                    try:
                        os.unlink(os.path.join(self.directory, name))
                    except OSError:
                        pass
            self._disk_entries = 0
            self._disk_bytes = 0

    def __len__(self) -> int:
        """The number of entries persisted on disk (exact: rescans the
        directory; use ``stats().size`` for the cheap tracked count)."""
        return self._scan_disk()[0]

    def disk_bytes(self) -> int:
        """The tracked total size of persisted entries, in bytes."""
        with self._lock:
            return self._disk_bytes

    def quarantined(self) -> int:
        """Corrupt entries moved to ``quarantine/`` over this cache's lifetime."""
        with self._lock:
            return self._quarantined

    def tmp_swept(self) -> int:
        """Orphaned ``*.tmp`` files removed when the directory was opened."""
        return self._tmp_swept

    def __contains__(self, key: Hashable) -> bool:
        return key in self._memory or os.path.exists(self._path(key))

    def stats(self) -> CacheStats:
        """Combined counters: a hit is a hit whether memory or disk served it.

        ``size`` is the incrementally tracked disk-entry count — O(1), not a
        directory scan — so it may drift from other processes' concurrent
        writes to a shared directory.
        """
        memory = self._memory.stats()
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=memory.evictions + self._evictions_disk,
                size=self._disk_entries,
                max_size=memory.max_size,
            )


def cache_collector(label: str, cache):
    """A :mod:`repro.obs` collector exposing one cache as ``repro_cache_*``.

    ``cache`` is anything with the ``stats() -> CacheStats`` contract
    (:class:`LRUCache`, :class:`DiskResultCache`, or the parse cache's
    wrapper); ``label`` becomes the ``cache`` label distinguishing families.
    Register the returned callable with
    :meth:`repro.obs.MetricsRegistry.add_collector` — and remove it when the
    owning object shuts down.
    """

    def collect():
        stats = cache.stats()
        labels = {"cache": label}
        families = [
            (
                "repro_cache_hits_total", "counter",
                "Lookups answered from the cache.", [(labels, stats.hits)],
            ),
            (
                "repro_cache_misses_total", "counter",
                "Lookups the cache could not answer.", [(labels, stats.misses)],
            ),
            (
                "repro_cache_evictions_total", "counter",
                "Entries evicted (LRU overflow or disk budget).",
                [(labels, stats.evictions)],
            ),
            (
                "repro_cache_entries", "gauge",
                "Entries currently held.", [(labels, stats.size)],
            ),
        ]
        if hasattr(cache, "disk_bytes"):
            families.append(
                (
                    "repro_cache_disk_bytes", "gauge",
                    "Tracked bytes of persisted entries.",
                    [(labels, cache.disk_bytes())],
                )
            )
        if hasattr(cache, "quarantined"):
            families.append(
                (
                    "repro_cache_quarantined_total", "counter",
                    "Corrupt entries moved to quarantine instead of served.",
                    [(labels, cache.quarantined())],
                )
            )
        if hasattr(cache, "tmp_swept"):
            families.append(
                (
                    "repro_cache_tmp_swept_total", "counter",
                    "Orphaned temp files removed when the directory was opened.",
                    [(labels, cache.tmp_swept())],
                )
            )
        return families

    return collect
