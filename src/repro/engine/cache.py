"""A small thread-safe LRU result cache with hit/miss accounting.

The engines key this cache by content fingerprints of the job inputs (see
:func:`repro.engine.compiled.schema_fingerprint` /
:func:`repro.engine.compiled.graph_fingerprint`), so identical jobs — the same
schema and data loaded twice, or re-submitted across batches — are answered
without recomputation, regardless of object identity.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Tuple


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    max_size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} evictions={self.evictions} "
            f"size={self.size}/{self.max_size} hit-rate={self.hit_rate:.1%}"
        )


class LRUCache:
    """Least-recently-used mapping with bounded size and usage counters.

    ``max_size <= 0`` disables caching entirely (every lookup is a miss and
    nothing is stored), which keeps the engine code path uniform.
    """

    _MISSING = object()

    def __init__(self, max_size: int = 1024):
        self.max_size = max_size
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(found, value)``; a hit refreshes the entry's recency."""
        with self._lock:
            value = self._entries.get(key, self._MISSING)
            if value is self._MISSING:
                self._misses += 1
                return False, None
            self._entries.move_to_end(key)
            self._hits += 1
            return True, value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the least-recent overflow."""
        if self.max_size <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept; they describe the lifetime)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        """A consistent snapshot of the usage counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_size=self.max_size,
            )
