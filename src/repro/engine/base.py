"""The shared batch driver behind the validation and containment engines.

Both engines follow the same lifecycle — key every job by content
fingerprints, answer repeats from the LRU cache, dedup identical keys within
the batch, fan the remaining misses out to the executor backend, and assemble
an :class:`repro.engine.jobs.EngineReport` in submission order.
:class:`BatchEngine` owns that lifecycle once; subclasses provide the
job-specific parts: coercion, key derivation, and miss execution.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro import faults as _faults
from repro.engine.cache import DiskResultCache, LRUCache
from repro.engine.executors import get_executor
from repro.engine.jobs import EngineReport, JobResult, Stopwatch
from repro.obs import metrics as _obs_metrics
from repro.obs import tracing as _obs_tracing

_REGISTRY = _obs_metrics.get_registry()
_M_BATCHES = _REGISTRY.counter(
    "repro_engine_batches_total",
    "run_batch invocations, by job kind and backend.",
    labels=("kind", "backend"),
)
_M_BATCH_SECONDS = _REGISTRY.histogram(
    "repro_engine_batch_seconds",
    "Wall time of one run_batch call, by job kind and backend.",
    labels=("kind", "backend"),
)
_M_JOBS = _REGISTRY.counter(
    "repro_engine_jobs_total",
    "Jobs answered, by kind and outcome (computed / cached / deduped).",
    labels=("kind", "outcome"),
)
_M_QUEUE_WAIT = _REGISTRY.histogram(
    "repro_engine_queue_wait_seconds",
    "Dispatch-to-start wait of one miss in the executor, by backend.",
    labels=("backend",),
)
_M_EXECUTE = _REGISTRY.histogram(
    "repro_engine_execute_seconds",
    "Pure execution time of one miss (queue wait excluded), by backend.",
    labels=("backend",),
)


class BatchEngine:
    """Submit/run_batch plumbing shared by the validation/containment engines.

    Subclasses set :attr:`kind` and implement:

    * ``_coerce_job(job)`` — accept the convenience tuple forms;
    * ``_key_job(job, memo)`` — the cache key (content fingerprints); ``memo``
      is a per-batch scratch dict for amortising repeated hashing;
    * ``_execute_single(job)`` — run one job in the calling thread to a
      ``(verdict, payload)`` pair;
    * ``_job_worker`` — a module-level (hence picklable) function with the same
      contract, used by the process backend and the async front-end.

    ``_execute_misses`` — fanning a batch of cache misses out to the executor —
    is implemented here once in terms of those two hooks.
    """

    kind = "job"

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        cache_size: int = 1024,
        cache_dir: Optional[str] = None,
        cache_max_mb: Optional[float] = None,
        cache_ttl: Optional[float] = None,
    ):
        self.backend = backend
        self._executor = get_executor(backend, max_workers)
        # With a cache_dir the result cache persists across processes and
        # restarts; cache_size then bounds only its in-memory front, while
        # cache_max_mb / cache_ttl bound the directory (size cap in MiB,
        # entry age in seconds — see DiskResultCache).
        if cache_dir is not None:
            self.cache = DiskResultCache(
                cache_dir,
                memory_size=cache_size,
                max_bytes=None if cache_max_mb is None else int(cache_max_mb * 1024 * 1024),
                ttl_seconds=cache_ttl,
            )
        else:
            self.cache = LRUCache(cache_size)
        self._pending: List = []

    # -- subclass hooks ------------------------------------------------------
    def _coerce_job(self, job):
        raise NotImplementedError

    def _key_job(self, job, memo: Dict) -> Tuple:
        raise NotImplementedError

    def _execute_single(self, job) -> Tuple[str, Dict]:
        """Run one job in the calling thread; returns ``(verdict, payload)``."""
        raise NotImplementedError

    #: Module-level worker with the ``job -> (verdict, payload)`` contract,
    #: picklable for the process backend.  Subclasses assign it with
    #: ``_job_worker = staticmethod(their_module_worker)``.
    _job_worker = None

    def _execute_misses(self, misses) -> List[Tuple[str, Dict, float]]:
        """Fan the cache misses ``[(job, key), ...]`` out to the executor.

        Returns ``[(verdict, payload, seconds), ...]`` in input order.  The
        process backend cannot observe per-job wall clock inside the workers,
        so it reports the pool-averaged cost and batch totals still add up.
        """
        if self._executor.name == "process":
            tasks = [job for job, _key in misses]
            with Stopwatch() as clock:
                raw = self._executor.map_ordered(type(self)._job_worker, tasks)
            per_job = clock.seconds / max(len(misses), 1)
            # Queue wait is invisible across the process boundary; the
            # pool-averaged cost is the best per-job execute estimate.
            execute_hist = _M_EXECUTE.labels(backend=self.backend)
            for _ in misses:
                execute_hist.observe(per_job)
            return [(verdict, payload, per_job) for verdict, payload in raw]

        wait_hist = _M_QUEUE_WAIT.labels(backend=self.backend)
        execute_hist = _M_EXECUTE.labels(backend=self.backend)
        dispatched = time.perf_counter()

        def run_one(task) -> Tuple[str, Dict, float]:
            job, _key = task
            wait_hist.observe(time.perf_counter() - dispatched)
            # Stands in for a worker dying mid-job: the injected exception
            # propagates through map_ordered exactly like a real crash.
            _faults.maybe_fail("executor")
            with Stopwatch() as clock:
                verdict, payload = self._execute_single(job)
            execute_hist.observe(clock.seconds)
            return verdict, payload, clock.seconds

        return self._executor.map_ordered(run_one, misses)

    # -- the shared lifecycle ------------------------------------------------
    def run_batch(self, jobs: Optional[Iterable] = None) -> EngineReport:
        """Execute the given jobs (or everything queued via ``submit``).

        Results come back in submission order.  Jobs whose fingerprint key was
        seen before are answered from the cache; duplicate keys within one
        batch are computed once and shared; the rest fan out to the executor.
        """
        if jobs is None:
            batch = self._pending
            self._pending = []
        else:
            batch = [self._coerce_job(job) for job in jobs]

        with Stopwatch() as clock, _obs_tracing.span(
            "engine.run_batch", kind=self.kind, backend=self.backend, jobs=len(batch)
        ):
            memo: Dict = {}
            keyed = [(job, self._key_job(job, memo)) for job in batch]

            results: List[Optional[JobResult]] = [None] * len(keyed)
            misses: List[Tuple] = []
            miss_indices: Dict[Tuple, List[int]] = {}
            for index, (job, key) in enumerate(keyed):
                if key in miss_indices:
                    miss_indices[key].append(index)
                    continue
                found, value = self.cache.get(key)
                if found:
                    verdict, payload = value
                    results[index] = JobResult(
                        index=index,
                        kind=self.kind,
                        label=job.label,
                        key=key,
                        verdict=verdict,
                        payload=payload,
                        seconds=0.0,
                        cached=True,
                    )
                else:
                    misses.append((job, key))
                    miss_indices[key] = [index]

            if misses:
                outcomes = self._execute_misses(misses)
                for (job, key), (verdict, payload, seconds) in zip(misses, outcomes):
                    self.cache.put(key, (verdict, payload))
                    for position, index in enumerate(miss_indices[key]):
                        results[index] = JobResult(
                            index=index,
                            kind=self.kind,
                            label=keyed[index][0].label,
                            key=key,
                            verdict=verdict,
                            payload=payload,
                            seconds=seconds if position == 0 else 0.0,
                            cached=position > 0,
                        )

        if _obs_metrics.STATE.enabled and batch:
            _M_BATCHES.labels(kind=self.kind, backend=self.backend).inc()
            _M_BATCH_SECONDS.labels(kind=self.kind, backend=self.backend).observe(
                clock.seconds
            )
            computed = len(misses)
            deduped = sum(len(indices) - 1 for indices in miss_indices.values())
            cached = len(batch) - computed - deduped
            _M_JOBS.labels(kind=self.kind, outcome="computed").inc(computed)
            if cached:
                _M_JOBS.labels(kind=self.kind, outcome="cached").inc(cached)
            if deduped:
                _M_JOBS.labels(kind=self.kind, outcome="deduped").inc(deduped)
        return EngineReport(
            results=tuple(result for result in results if result is not None),
            backend=self.backend,
            seconds=clock.seconds,
            cache=self.cache.stats(),
        )

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shut down the executor backend (idempotent; also via ``with``)."""
        self._executor.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False
