"""Compiled schema artifacts: precomputed per-type data for repeated checks.

Every entry point of the library (validation, compressed validation,
containment) repeatedly needs the same derived data about a schema: the sorted
alphabet of each rule, its RBE0 profile and per-symbol occurrence bounds, the
Presburger template ``ψ_{δ(t)}(z̄, 1)`` of Section 6.1, the schema's position in
the class hierarchy, and its shape graph.  The one-shot APIs recompute all of
this on every call; :class:`CompiledSchema` computes each piece once and interns
it so that batch workloads pay the compilation cost a single time per schema.

Fingerprints (content hashes) of schemas and graphs are also defined here; the
engine caches use them as keys, so two structurally identical schemas loaded
from different files share compilation and cached results.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple, Union

from repro.graphs.graph import Graph
from repro.presburger.build import rbe_to_formula
from repro.presburger.formula import Formula, const, fresh_variable
from repro.rbe.ast import RBE
from repro.rbe.rbe0 import RBE0Profile, as_rbe0
from repro.schema.shex import ShExSchema, TypeName


def schema_fingerprint(schema: ShExSchema) -> str:
    """A content hash of a schema: identical rules yield identical fingerprints.

    The canonical text of ``str(schema)`` lists rules sorted by type name, so
    the fingerprint ignores the schema's display name and rule insertion order.
    """
    digest = hashlib.sha256()
    digest.update(b"shex-schema\x00")
    digest.update(str(schema).encode("utf-8"))
    return digest.hexdigest()


def graph_fingerprint(graph: Graph) -> str:
    """A content hash of a graph (nodes, labelled edges, occurrence intervals)."""
    digest = hashlib.sha256()
    digest.update(b"graph\x00")
    for node in sorted(graph.nodes, key=repr):
        digest.update(repr(node).encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"\x01")
    lines = sorted(
        f"{edge.source!r}\x00{edge.label}\x00{edge.target!r}\x00{edge.occur}"
        for edge in graph.edges
    )
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\x02")
    return digest.hexdigest()


class CompiledType:
    """Precomputed data for one type of a schema.

    The eager part (sorted alphabet, symbol set, RBE0 profile, per-symbol
    bounds) is what every plain-graph check needs; the Presburger template is
    built lazily, the first time a compressed-graph check asks for it.
    """

    __slots__ = (
        "type_name",
        "expr",
        "sorted_alphabet",
        "symbol_set",
        "profile",
        "group_bounds",
        "_template",
        "_normalised",
    )

    def __init__(self, type_name: TypeName, expr: RBE):
        self.type_name = type_name
        self.expr = expr
        self.sorted_alphabet: Tuple[object, ...] = tuple(sorted(expr.alphabet(), key=repr))
        self.symbol_set = frozenset(self.sorted_alphabet)
        self.profile: Optional[RBE0Profile] = as_rbe0(expr)
        self.group_bounds: Optional[Dict[object, Tuple[int, Optional[int]]]] = None
        if self.profile is not None:
            self.group_bounds = {
                symbol: (interval.lower, interval.upper)
                for symbol, interval in self.profile.per_symbol_interval().items()
            }
        self._template: Optional[Tuple[Dict[object, str], Formula]] = None
        self._normalised = None

    def presburger_template(self) -> Tuple[Dict[object, str], Formula]:
        """``(z_vars, ψ_{δ(t)}(z̄, 1))`` with stable per-type count variables.

        The formula is immutable and its internal helper variables are bound,
        so the same template can appear in arbitrarily many per-node formulas.
        The pair is assigned in one write, keeping concurrent first calls safe.
        """
        template = self._template
        if template is None:
            z_vars = {symbol: fresh_variable("z") for symbol in self.sorted_alphabet}
            template = (z_vars, rbe_to_formula(self.expr, z_vars, const(1)))
            self._template = template
        return template

    def normalised_template(self):
        """``(z_vars, conjuncts)``: the template's DNF as normalised rows.

        Every conjunct of ``ψ_{δ(t)}(z̄, 1)`` is pre-normalised into the
        hashable coefficient rows of :func:`repro.presburger.solver.normalise_conjunct`,
        so per-(node, type) compressed checks assemble their linear systems by
        concatenating rows instead of rebuilding and re-normalising formula
        trees.  The template's helper variables are bound and uniquely named,
        hence safe to share across any number of per-node systems (the batch
        solver keys variables per block).  Computed once per type.
        """
        normalised = self._normalised
        if normalised is None:
            from repro.presburger.solver import _to_dnf, normalise_conjunct

            z_vars, psi = self.presburger_template()
            conjuncts = []
            for atoms in _to_dnf(psi):
                conjunct = normalise_conjunct(atoms)
                if conjunct is not None:
                    conjuncts.append(conjunct)
            normalised = (z_vars, tuple(conjuncts))
            self._normalised = normalised
        return normalised


class CompiledSchema:
    """A schema plus every derived artifact the engines need, computed once.

    Construction is cheap (per-type artifacts, classification, and the shape
    graph are all materialised lazily); instances are reusable across any
    number of validation and containment jobs and across threads — the worst a
    race can do is compute an identical immutable artifact twice.
    """

    def __init__(self, schema: ShExSchema):
        self.schema = schema
        self.fingerprint = schema_fingerprint(schema)
        self._types: Dict[TypeName, CompiledType] = {}
        self._schema_class = None
        self._shape_graph: Optional[Graph] = None
        self._is_shex0: Optional[bool] = None
        self._type_order: Optional[Tuple[TypeName, ...]] = None
        self._watchers: Optional[Dict[object, Tuple[TypeName, ...]]] = None

    @classmethod
    def of(cls, schema: Union[ShExSchema, "CompiledSchema"]) -> "CompiledSchema":
        """Coerce: compile a schema, pass a compiled schema through unchanged."""
        if isinstance(schema, CompiledSchema):
            return schema
        return cls(schema)

    @property
    def types(self):
        """The schema's type names (delegates to the wrapped schema)."""
        return self.schema.types

    @property
    def type_order(self) -> Tuple[TypeName, ...]:
        """The schema's type names, sorted once: the deterministic iteration
        order the fixpoint kernel uses instead of per-iteration ``sorted()``."""
        if self._type_order is None:
            self._type_order = tuple(sorted(self.schema.types))
        return self._type_order

    def symbol_watchers(self) -> Dict[object, Tuple[TypeName, ...]]:
        """``(label, type) -> types whose alphabet contains that symbol``.

        The inverted alphabet index behind fine-grained dirtiness: when a node
        loses type ``τ``, a predecessor reached through label ``a`` only needs
        its type ``t`` re-checked when ``(a, τ)`` occurs in ``δ(t)`` — i.e.
        when ``t`` *watches* the symbol.  Computed once per schema.
        """
        if self._watchers is None:
            watchers: Dict[object, list] = {}
            for type_name in self.type_order:
                for symbol in self.type_artifact(type_name).sorted_alphabet:
                    watchers.setdefault(symbol, []).append(type_name)
            self._watchers = {
                symbol: tuple(types) for symbol, types in watchers.items()
            }
        return self._watchers

    def type_artifact(self, type_name: TypeName) -> CompiledType:
        """The (interned) per-type artifact for ``type_name``."""
        artifact = self._types.get(type_name)
        if artifact is None:
            artifact = CompiledType(type_name, self.schema.definition(type_name))
            self._types[type_name] = artifact
        return artifact

    @property
    def schema_class(self):
        """The schema's position in the paper's hierarchy (Figure 7), cached."""
        if self._schema_class is None:
            from repro.schema.classes import schema_class

            self._schema_class = schema_class(self.schema)
        return self._schema_class

    @property
    def is_shex0(self) -> bool:
        """Whether the schema is in ShEx0 (cached after the first check)."""
        if self._is_shex0 is None:
            from repro.schema.classes import is_shex0

            self._is_shex0 = is_shex0(self.schema)
        return self._is_shex0

    @property
    def shape_graph(self) -> Graph:
        """The shape-graph form of the schema (requires ShEx0), cached."""
        if self._shape_graph is None:
            from repro.schema.convert import schema_to_shape_graph

            self._shape_graph = schema_to_shape_graph(self.schema)
        return self._shape_graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledSchema {self.schema.name!r} fp={self.fingerprint[:12]}>"


# Per-process intern table: compiling is idempotent, so worker processes (and
# repeated single-call wrappers) can share compiled artifacts by fingerprint.
_INTERNED: Dict[str, CompiledSchema] = {}
_INTERN_LIMIT = 256


def compile_schema(schema: Union[ShExSchema, CompiledSchema]) -> CompiledSchema:
    """Compile (or intern) a schema; the cached instance is keyed by content."""
    if isinstance(schema, CompiledSchema):
        return schema
    fingerprint = schema_fingerprint(schema)
    compiled = _INTERNED.get(fingerprint)
    if compiled is None:
        compiled = CompiledSchema(schema)
        if len(_INTERNED) >= _INTERN_LIMIT:
            _INTERNED.clear()
        _INTERNED[compiled.fingerprint] = compiled
    return compiled
