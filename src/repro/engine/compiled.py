"""Compiled schema artifacts: precomputed per-type data for repeated checks.

Every entry point of the library (validation, compressed validation,
containment) repeatedly needs the same derived data about a schema: the sorted
alphabet of each rule, its RBE0 profile and per-symbol occurrence bounds, the
Presburger template ``ψ_{δ(t)}(z̄, 1)`` of Section 6.1, the schema's position in
the class hierarchy, and its shape graph.  The one-shot APIs recompute all of
this on every call; :class:`CompiledSchema` computes each piece once and interns
it so that batch workloads pay the compilation cost a single time per schema.

Fingerprints (content hashes) of schemas and graphs are also defined here; the
engine caches use them as keys, so two structurally identical schemas loaded
from different files share compilation and cached results.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple, Union

from repro.graphs.graph import Graph
from repro.presburger.build import rbe_to_formula
from repro.presburger.formula import Formula, const, fresh_variable
from repro.rbe.ast import RBE
from repro.rbe.rbe0 import RBE0Profile, as_rbe0
from repro.schema.shex import ShExSchema, TypeName


def schema_fingerprint(schema: ShExSchema) -> str:
    """A content hash of a schema: identical rules yield identical fingerprints.

    The canonical text of ``str(schema)`` lists rules sorted by type name, so
    the fingerprint ignores the schema's display name and rule insertion order.
    """
    digest = hashlib.sha256()
    digest.update(b"shex-schema\x00")
    digest.update(str(schema).encode("utf-8"))
    return digest.hexdigest()


def graph_fingerprint(graph: Graph) -> str:
    """A content hash of a graph (nodes, labelled edges, occurrence intervals)."""
    digest = hashlib.sha256()
    digest.update(b"graph\x00")
    for node in sorted(graph.nodes, key=repr):
        digest.update(repr(node).encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"\x01")
    lines = sorted(
        f"{edge.source!r}\x00{edge.label}\x00{edge.target!r}\x00{edge.occur}"
        for edge in graph.edges
    )
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\x02")
    return digest.hexdigest()


class CompiledType:
    """Precomputed data for one type of a schema.

    The eager part (sorted alphabet, symbol set, RBE0 profile, per-symbol
    bounds) is what every plain-graph check needs; the Presburger template is
    built lazily, the first time a compressed-graph check asks for it.
    """

    __slots__ = (
        "type_name",
        "expr",
        "sorted_alphabet",
        "symbol_set",
        "profile",
        "group_bounds",
        "_template",
        "_normalised",
    )

    def __init__(self, type_name: TypeName, expr: RBE):
        self.type_name = type_name
        self.expr = expr
        self.sorted_alphabet: Tuple[object, ...] = tuple(sorted(expr.alphabet(), key=repr))
        self.symbol_set = frozenset(self.sorted_alphabet)
        self.profile: Optional[RBE0Profile] = as_rbe0(expr)
        self.group_bounds: Optional[Dict[object, Tuple[int, Optional[int]]]] = None
        if self.profile is not None:
            self.group_bounds = {
                symbol: (interval.lower, interval.upper)
                for symbol, interval in self.profile.per_symbol_interval().items()
            }
        self._template: Optional[Tuple[Dict[object, str], Formula]] = None
        self._normalised = None

    def presburger_template(self) -> Tuple[Dict[object, str], Formula]:
        """``(z_vars, ψ_{δ(t)}(z̄, 1))`` with stable per-type count variables.

        The formula is immutable and its internal helper variables are bound,
        so the same template can appear in arbitrarily many per-node formulas.
        The pair is assigned in one write, keeping concurrent first calls safe.
        """
        template = self._template
        if template is None:
            z_vars = {symbol: fresh_variable("z") for symbol in self.sorted_alphabet}
            template = (z_vars, rbe_to_formula(self.expr, z_vars, const(1)))
            self._template = template
        return template

    def normalised_template(self):
        """``(z_vars, conjuncts)``: the template's DNF as normalised rows.

        Every conjunct of ``ψ_{δ(t)}(z̄, 1)`` is pre-normalised into the
        hashable coefficient rows of :func:`repro.presburger.solver.normalise_conjunct`,
        so per-(node, type) compressed checks assemble their linear systems by
        concatenating rows instead of rebuilding and re-normalising formula
        trees.  The template's helper variables are bound and uniquely named,
        hence safe to share across any number of per-node systems (the batch
        solver keys variables per block).  Computed once per type.
        """
        normalised = self._normalised
        if normalised is None:
            from repro.presburger.solver import _to_dnf, normalise_conjunct

            z_vars, psi = self.presburger_template()
            conjuncts = []
            for atoms in _to_dnf(psi):
                conjunct = normalise_conjunct(atoms)
                if conjunct is not None:
                    conjuncts.append(conjunct)
            normalised = (z_vars, tuple(conjuncts))
            self._normalised = normalised
        return normalised


class CompiledSchema:
    """A schema plus every derived artifact the engines need, computed once.

    Construction is cheap (per-type artifacts, classification, and the shape
    graph are all materialised lazily); instances are reusable across any
    number of validation and containment jobs and across threads — the worst a
    race can do is compute an identical immutable artifact twice.
    """

    def __init__(self, schema: ShExSchema):
        self.schema = schema
        self.fingerprint = schema_fingerprint(schema)
        self._types: Dict[TypeName, CompiledType] = {}
        self._schema_class = None
        self._shape_graph: Optional[Graph] = None
        self._is_shex0: Optional[bool] = None
        self._type_order: Optional[Tuple[TypeName, ...]] = None
        self._type_index: Optional[Dict[TypeName, int]] = None
        self._label_order: Optional[Tuple[object, ...]] = None
        self._label_index: Optional[Dict[object, int]] = None
        self._watchers: Optional[Dict[object, Tuple[TypeName, ...]]] = None
        self._dense_tables = None

    @classmethod
    def of(cls, schema: Union[ShExSchema, "CompiledSchema"]) -> "CompiledSchema":
        """Coerce: compile a schema, pass a compiled schema through unchanged."""
        if isinstance(schema, CompiledSchema):
            return schema
        return cls(schema)

    @property
    def types(self):
        """The schema's type names (delegates to the wrapped schema)."""
        return self.schema.types

    @property
    def type_order(self) -> Tuple[TypeName, ...]:
        """The schema's type names, sorted once: the deterministic iteration
        order the fixpoint kernel uses instead of per-iteration ``sorted()``."""
        if self._type_order is None:
            self._type_order = tuple(sorted(self.schema.types))
        return self._type_order

    @property
    def type_index(self) -> Dict[TypeName, int]:
        """``type name -> position in type_order`` (the bit index of the
        vectorised kernel's typing rows)."""
        if self._type_index is None:
            self._type_index = {
                type_name: index for index, type_name in enumerate(self.type_order)
            }
        return self._type_index

    @property
    def label_order(self) -> Tuple[object, ...]:
        """Every edge label mentioned by some rule's alphabet, sorted once."""
        if self._label_order is None:
            labels = {
                symbol[0]
                for type_name in self.type_order
                for symbol in self.type_artifact(type_name).sorted_alphabet
            }
            self._label_order = tuple(sorted(labels, key=repr))
        return self._label_order

    @property
    def label_index(self) -> Dict[object, int]:
        """``label -> position in label_order``; labels no rule mentions map to
        the sentinel row ``len(label_order)`` in the dense tables."""
        if self._label_index is None:
            self._label_index = {
                label: index for index, label in enumerate(self.label_order)
            }
        return self._label_index

    def dense_tables(self):
        """Dense numpy index tables driving the vectorised fixpoint kernel.

        Built once per schema (requires numpy; raises ``RuntimeError`` without
        it).  See :class:`DenseTables` for the layout.
        """
        tables = self._dense_tables
        if tables is None:
            tables = DenseTables(self)
            self._dense_tables = tables
        return tables

    def symbol_watchers(self) -> Dict[object, Tuple[TypeName, ...]]:
        """``(label, type) -> types whose alphabet contains that symbol``.

        The inverted alphabet index behind fine-grained dirtiness: when a node
        loses type ``τ``, a predecessor reached through label ``a`` only needs
        its type ``t`` re-checked when ``(a, τ)`` occurs in ``δ(t)`` — i.e.
        when ``t`` *watches* the symbol.  Computed once per schema.
        """
        if self._watchers is None:
            watchers: Dict[object, list] = {}
            for type_name in self.type_order:
                for symbol in self.type_artifact(type_name).sorted_alphabet:
                    watchers.setdefault(symbol, []).append(type_name)
            self._watchers = {
                symbol: tuple(types) for symbol, types in watchers.items()
            }
        return self._watchers

    def type_artifact(self, type_name: TypeName) -> CompiledType:
        """The (interned) per-type artifact for ``type_name``."""
        artifact = self._types.get(type_name)
        if artifact is None:
            artifact = CompiledType(type_name, self.schema.definition(type_name))
            self._types[type_name] = artifact
        return artifact

    @property
    def schema_class(self):
        """The schema's position in the paper's hierarchy (Figure 7), cached."""
        if self._schema_class is None:
            from repro.schema.classes import schema_class

            self._schema_class = schema_class(self.schema)
        return self._schema_class

    @property
    def is_shex0(self) -> bool:
        """Whether the schema is in ShEx0 (cached after the first check)."""
        if self._is_shex0 is None:
            from repro.schema.classes import is_shex0

            self._is_shex0 = is_shex0(self.schema)
        return self._is_shex0

    @property
    def shape_graph(self) -> Graph:
        """The shape-graph form of the schema (requires ShEx0), cached."""
        if self._shape_graph is None:
            from repro.schema.convert import schema_to_shape_graph

            self._shape_graph = schema_to_shape_graph(self.schema)
        return self._shape_graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledSchema {self.schema.name!r} fp={self.fingerprint[:12]}>"


class DenseTables:
    """Precomputed array-shaped views of a schema for the vectorised kernel.

    With ``T = len(type_order)``, ``L = len(label_order)`` and
    ``W = ceil(T / 64)`` (at least 1), the tables are:

    ``option_masks``
        ``(T, L + 1, W)`` uint64.  Row ``[t, l]`` has bit ``τ`` set iff the
        symbol ``(label_order[l], type_order[τ])`` occurs in ``δ(t)``'s
        alphabet — AND-ing it with a target node's typing row yields the
        candidate *options* of one edge under a candidate type ``t``.  The
        sentinel row ``l = L`` (labels no rule mentions) is all zeros, so
        unknown-label edges fail exactly like the object kernel's empty
        options.  Symbols whose target type is not defined by the schema are
        skipped: an undefined type can never be a candidate.

    ``watcher_masks``
        ``(L + 1, T, W)`` uint64.  Row ``[l, τ]`` has bit ``t`` set iff
        ``t`` watches the symbol ``(label_order[l], type_order[τ])`` — the
        array form of :meth:`CompiledSchema.symbol_watchers`, OR-ed into a
        predecessor's dirty row when a successor loses type ``τ``.

    ``full_mask``
        ``(W,)`` uint64 with bits ``0..T-1`` set (the seed relation ``Γ``).

    ``word_of`` / ``shift_of``
        ``(T,)`` arrays mapping a type index to its word and bit position —
        ``(row[word_of[t]] >> shift_of[t]) & 1`` tests membership.

    ``bit_rows``
        ``(T, W)`` uint64; row ``t`` is the single-bit mask of type ``t``.
    """

    __slots__ = (
        "words",
        "type_order",
        "label_order",
        "full_mask",
        "option_masks",
        "watcher_masks",
        "word_of",
        "shift_of",
        "bit_rows",
    )

    def __init__(self, compiled: "CompiledSchema"):
        try:
            import numpy as np
        except ImportError as exc:  # pragma: no cover - numpy is baked into CI
            raise RuntimeError("dense_tables() requires numpy") from exc

        type_order = compiled.type_order
        type_index = compiled.type_index
        label_order = compiled.label_order
        label_index = compiled.label_index
        count = len(type_order)
        labels = len(label_order)
        words = max(1, (count + 63) // 64)

        self.words = words
        self.type_order = type_order
        self.label_order = label_order

        indices = np.arange(count, dtype=np.uint64)
        self.word_of = (indices >> np.uint64(6)).astype(np.intp)
        self.shift_of = indices & np.uint64(63)
        self.bit_rows = np.zeros((count, words), dtype=np.uint64)
        self.bit_rows[np.arange(count), self.word_of] = (
            np.uint64(1) << self.shift_of
        )
        self.full_mask = np.bitwise_or.reduce(
            self.bit_rows, axis=0
        ) if count else np.zeros(words, dtype=np.uint64)

        self.option_masks = np.zeros((count, labels + 1, words), dtype=np.uint64)
        self.watcher_masks = np.zeros((labels + 1, count, words), dtype=np.uint64)
        for t_pos, type_name in enumerate(type_order):
            artifact = compiled.type_artifact(type_name)
            for label, target_type in artifact.sorted_alphabet:
                tau = type_index.get(target_type)
                if tau is None:
                    continue  # undefined target type: never a candidate
                l_pos = label_index[label]
                self.option_masks[t_pos, l_pos] |= self.bit_rows[tau]
                self.watcher_masks[l_pos, tau] |= self.bit_rows[t_pos]


# Per-process intern table: compiling is idempotent, so worker processes (and
# repeated single-call wrappers) can share compiled artifacts by fingerprint.
_INTERNED: Dict[str, CompiledSchema] = {}
_INTERN_LIMIT = 256


def compile_schema(schema: Union[ShExSchema, CompiledSchema]) -> CompiledSchema:
    """Compile (or intern) a schema; the cached instance is keyed by content."""
    if isinstance(schema, CompiledSchema):
        return schema
    fingerprint = schema_fingerprint(schema)
    compiled = _INTERNED.get(fingerprint)
    if compiled is None:
        compiled = CompiledSchema(schema)
        if len(_INTERNED) >= _INTERN_LIMIT:
            _INTERNED.clear()
        _INTERNED[compiled.fingerprint] = compiled
    return compiled
