"""repro.engine — a batched, parallel, cache-aware validation & containment engine.

The one-shot entry points of the library (:func:`repro.schema.validation.validate`,
:func:`repro.containment.api.contains`) recompile their schemas and rebuild
every derived artifact per call.  This subsystem turns them into a reusable
service layer:

* :class:`CompiledSchema` — per-type alphabets, RBE0 bounds, Presburger
  templates, classification, and shape graphs, computed once and interned by
  content fingerprint;
* :class:`ValidationEngine` / :class:`ContainmentEngine` — ``submit`` /
  ``run_batch`` APIs that fan independent jobs out to a pluggable executor
  (``serial``, ``thread``, ``process``) and serve repeated jobs from an LRU
  cache keyed by content hashes (optionally persisted on disk via
  :class:`DiskResultCache` / ``cache_dir``);
* :func:`maximal_typing_fixpoint` — the shared SCC-scheduled fixpoint kernel
  under both validation semantics (:mod:`repro.engine.fixpoint`): fine-grained
  ``(node, type)`` dirtiness, neighbourhood-signature memoisation, batched
  Presburger solving;
* :func:`maximal_typing_chunked` — intra-job parallelism over the node
  frontier of a single large graph;
* :mod:`repro.engine.manifest` — declarative batch manifests for the
  ``shex-containment batch`` CLI subcommand;
* :class:`JobResult` / :class:`EngineReport` — structured outcomes with
  timings and cache statistics, byte-identical across backends.
"""

from repro.engine.cache import CacheStats, DiskResultCache, LRUCache
from repro.engine.compiled import (
    CompiledSchema,
    CompiledType,
    compile_schema,
    graph_fingerprint,
    schema_fingerprint,
)
from repro.engine.containment import ContainmentEngine
from repro.engine.executors import (
    BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)
from repro.engine.fixpoint import (
    FixpointStats,
    affected_region,
    maximal_typing_fixpoint,
    maximal_typing_store,
    retype_incremental,
)
from repro.engine.jobs import ContainmentJob, EngineReport, JobResult, ValidationJob
from repro.engine.manifest import ManifestEntry, load_jobs, load_manifest, parse_manifest
from repro.engine.validation import (
    RevalidationOutcome,
    ValidationEngine,
    maximal_typing_chunked,
)

__all__ = [
    "BACKENDS",
    "CacheStats",
    "CompiledSchema",
    "CompiledType",
    "ContainmentEngine",
    "ContainmentJob",
    "DiskResultCache",
    "EngineReport",
    "FixpointStats",
    "JobResult",
    "LRUCache",
    "ManifestEntry",
    "ProcessExecutor",
    "RevalidationOutcome",
    "SerialExecutor",
    "ThreadExecutor",
    "ValidationEngine",
    "ValidationJob",
    "affected_region",
    "compile_schema",
    "get_executor",
    "graph_fingerprint",
    "load_jobs",
    "load_manifest",
    "maximal_typing_chunked",
    "maximal_typing_fixpoint",
    "maximal_typing_store",
    "parse_manifest",
    "retype_incremental",
    "schema_fingerprint",
]
