"""The shared maximal-typing fixpoint kernel.

Both validation semantics — plain graphs (:func:`repro.schema.typing.maximal_typing`)
and compressed graphs (:func:`repro.schema.validation.maximal_typing_compressed`)
— compute the same greatest fixpoint: start from the full relation ``N × Γ``
and drop ``(node, type)`` pairs whose check fails under the current relation
until nothing changes.  This module owns that loop once, with three
scheduling/solving improvements over the per-semantics worklists it replaced
(retained in :mod:`repro.schema.reference`):

**SCC schedule.**  A node's types depend only on the types of its successors,
so the graph is condensed into strongly connected components
(:mod:`repro.graphs.scc`) and each component is driven to its local fixpoint
in reverse topological order (sinks first).  By the time a component is
examined, everything it depends on outside itself is final — types stabilise
component-by-component instead of rippling globally, and no component is ever
revisited.

**Fine-grained dirtiness.**  Work is tracked per ``(node, type)`` pair, not
per node.  When a successor reached through label ``a`` loses type ``τ``, a
pair ``(n, t)`` is marked dirty only when the symbol ``(a, τ)`` occurs in
``t``'s alphabet (the inverted index
:meth:`repro.engine.compiled.CompiledSchema.symbol_watchers`); all other types
of ``n`` provably cannot have been invalidated.  Iteration order comes from
the precomputed :attr:`repro.engine.compiled.CompiledSchema.type_order`, so
the inner loop performs no per-iteration ``sorted()`` calls.

**Signature memoisation and batched solving.**  A check's outcome depends
only on the type and the node's *neighbourhood signature* — the multiset of
``(label[, multiplicity], candidate types)`` over its out-edges — so
isomorphic nodes (clones, unrolled copies, kind-mates) are checked once per
signature.  Under the compressed semantics, each refinement round collects
every non-memoised check, assembles its linear system from the type's cached
normalised Presburger template
(:meth:`repro.engine.compiled.CompiledType.normalised_template`), and answers
the whole round through one batched MILP invocation
(:func:`repro.presburger.solver.solve_problems`) instead of one solver call
per pair.

Chaotic iteration of a monotone operator reaches the same greatest fixpoint
regardless of evaluation order, so all of the above is a *schedule* — the
resulting typing is identical to the naive full-rescan reference, which the
parity suite (``tests/property/test_fixpoint_parity.py``) asserts on
randomized instances.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

from repro.engine.compiled import CompiledSchema, compile_schema
from repro.engine import vectorized as _vectorized
from repro.obs import metrics as _obs_metrics
from repro.obs import tracing as _obs_tracing
from repro.graphs.graph import Graph
from repro.graphs.scc import backward_closure, strongly_connected_components
from repro.presburger.solver import solve_problems
from repro.schema.shex import ShExSchema, TypeName
from repro.schema.typing import Typing, satisfies_type_groups

NodeId = Hashable

#: A plain-semantics neighbourhood signature entry: (label, candidate types).
#: Compressed signatures additionally carry the edge multiplicity.


@dataclass
class FixpointStats:
    """Counters describing one kernel run (observability and benchmarks).

    ``checks`` counts (node, type) satisfaction questions asked;
    ``signature_hits`` how many were answered from the neighbourhood-signature
    memo; ``shortcut_failures`` how many failed outright because a mandatory
    edge had no candidate target type (no memo needed); ``solver_problems``
    how many Presburger systems reached the batch solver (compressed semantics
    only).  ``checks - signature_hits - shortcut_failures`` is therefore the
    number of checks actually *evaluated* — on a graph of isomorphic clones it
    stays flat as copies are added.  Presburger-side counters (memo hits,
    actual MILP invocations, warm-start hits) are read through a
    :class:`repro.presburger.solver.SolverWindow`.

    ``mode`` records which schedule produced the typing: ``"full"`` (the plain
    kernel), ``"kinds"`` (full typing through the kind-compression quotient),
    ``"incremental"`` (delta-seeded), ``"kinds-incremental"`` (view-delta-seeded
    retyping of the quotient), or ``"unchanged"`` (empty effective delta).
    For incremental runs ``frontier`` is the number of delta-touched nodes
    (kinds, on the quotient) and ``affected`` the size of their backward
    closure — the region actually retyped.
    """

    components: int = 0
    rounds: int = 0
    checks: int = 0
    signature_hits: int = 0
    shortcut_failures: int = 0
    removals: int = 0
    solver_problems: int = 0
    mode: str = "full"
    frontier: int = 0
    affected: int = 0

    @property
    def evaluated(self) -> int:
        """Checks that required real work (no memo, no shortcut)."""
        return self.checks - self.signature_hits - self.shortcut_failures


# --------------------------------------------------------------------------- #
# Process-wide kernel metrics (repro.obs)
# --------------------------------------------------------------------------- #
_REGISTRY = _obs_metrics.get_registry()
_M_RUNS = _REGISTRY.counter(
    "repro_fixpoint_runs_total", "Kernel runs, by schedule mode.", labels=("mode",)
)
_M_RUN_SECONDS = _REGISTRY.histogram(
    "repro_fixpoint_run_seconds",
    "Wall time of one outermost kernel run, by schedule mode.",
    labels=("mode",),
)
_M_COMPONENTS = _REGISTRY.counter(
    "repro_fixpoint_components_total", "Strongly connected components scheduled."
)
_M_ROUNDS = _REGISTRY.counter(
    "repro_fixpoint_rounds_total", "Refinement rounds across all components."
)
_M_CHECKS = _REGISTRY.counter(
    "repro_fixpoint_checks_total", "(node, type) satisfaction checks asked."
)
_M_SIGNATURE_HITS = _REGISTRY.counter(
    "repro_fixpoint_signature_hits_total",
    "Checks answered from the neighbourhood-signature memo.",
)
_M_SHORTCUT_FAILURES = _REGISTRY.counter(
    "repro_fixpoint_shortcut_failures_total",
    "Checks failed outright (mandatory edge with no candidate target).",
)
_M_REMOVALS = _REGISTRY.counter(
    "repro_fixpoint_removals_total", "(node, type) pairs dropped from the relation."
)
_M_SOLVER_PROBLEMS = _REGISTRY.counter(
    "repro_fixpoint_solver_problems_total",
    "Presburger systems handed to the batch solver.",
)
_M_FRONTIER = _REGISTRY.histogram(
    "repro_fixpoint_frontier",
    "Delta-touched nodes (kinds, on the quotient) seeding an incremental run.",
)
_M_AFFECTED = _REGISTRY.histogram(
    "repro_fixpoint_affected", "Backward-closure size actually retyped."
)

_DEPTH = threading.local()

#: Stats fields flushed as counter increments when an outermost run ends.
_FLUSHED_FIELDS = (
    ("components", _M_COMPONENTS),
    ("rounds", _M_ROUNDS),
    ("checks", _M_CHECKS),
    ("signature_hits", _M_SIGNATURE_HITS),
    ("shortcut_failures", _M_SHORTCUT_FAILURES),
    ("removals", _M_REMOVALS),
    ("solver_problems", _M_SOLVER_PROBLEMS),
)


class _KernelScope:
    """Flush one *outermost* kernel run into the registry on exit.

    The entry functions nest (``retype_incremental`` falls back to
    ``maximal_typing_store``, which calls ``kind_typing_for_view``...), and
    callers set ``stats.mode`` at different points, so per-function recording
    would double count and mislabel.  A thread-local depth makes only the
    outermost scope record — once, after the final ``mode`` is in place —
    and it flushes *deltas* of the stats fields since entry, so a caller
    reusing one ``FixpointStats`` across runs is counted correctly.
    """

    __slots__ = ("_stats", "_outermost", "_started", "_entry")

    def __init__(self, stats: "FixpointStats"):
        self._stats = stats

    def __enter__(self) -> "_KernelScope":
        depth = getattr(_DEPTH, "value", 0)
        _DEPTH.value = depth + 1
        self._outermost = depth == 0 and _obs_metrics.STATE.enabled
        if self._outermost:
            self._started = time.perf_counter()
            self._entry = {
                field: getattr(self._stats, field) for field, _ in _FLUSHED_FIELDS
            }
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _DEPTH.value -= 1
        if self._outermost and exc_type is None:
            stats = self._stats
            mode = stats.mode
            _M_RUNS.labels(mode=mode).inc()
            _M_RUN_SECONDS.labels(mode=mode).observe(
                time.perf_counter() - self._started
            )
            for field, counter in _FLUSHED_FIELDS:
                delta = getattr(stats, field) - self._entry[field]
                if delta:
                    counter.inc(delta)
            if mode in ("incremental", "kinds-incremental", "unchanged"):
                _M_FRONTIER.observe(stats.frontier)
                _M_AFFECTED.observe(stats.affected)
        return False


def fixpoint_metrics_summary() -> Dict[str, object]:
    """Point-in-time totals of the kernel's process-wide counters.

    The daemon's ``metrics`` op embeds this; it is a convenience read over
    the ``repro_fixpoint_*`` instruments, not a separate store.
    """
    runs_by_mode: Dict[str, float] = {}
    runs = _REGISTRY.get("repro_fixpoint_runs_total")
    if runs is not None:
        runs_by_mode = {key[0]: child.value for key, child in runs._items()}
    checks = _M_CHECKS.value
    hits = _M_SIGNATURE_HITS.value
    return {
        "runs": runs_by_mode,
        "components": _M_COMPONENTS.value,
        "rounds": _M_ROUNDS.value,
        "checks": checks,
        "signature_hits": hits,
        "signature_hit_rate": (hits / checks) if checks else 0.0,
        "shortcut_failures": _M_SHORTCUT_FAILURES.value,
        "removals": _M_REMOVALS.value,
        "solver_problems": _M_SOLVER_PROBLEMS.value,
    }


def maximal_typing_fixpoint(
    graph: Graph,
    schema: Optional[Union[ShExSchema, CompiledSchema]] = None,
    compiled: Optional[CompiledSchema] = None,
    compressed: bool = False,
    stats: Optional[FixpointStats] = None,
    signature_memo: Optional[Dict[Tuple, bool]] = None,
) -> Typing:
    """The maximal typing of ``graph``, by the SCC-scheduled fixpoint kernel.

    ``compressed`` selects the Section 6.1 semantics (edge multiplicities as
    exponents, satisfaction via batched Presburger solving).  Pass ``stats``
    to collect :class:`FixpointStats` about the run.  Either ``schema`` or a
    pre-built ``compiled`` schema must be given; results are identical to the
    naive references in :mod:`repro.schema.reference`.

    ``signature_memo`` optionally supplies a persistent
    ``(type, neighbourhood signature) -> verdict`` dictionary.  A check's
    outcome is a pure function of that key, so the memo may be carried across
    any number of runs *of the same compiled schema* — the engines reuse one
    per schema fingerprint, which is what makes repeated revalidation of
    slightly-changed graphs nearly free.
    """
    if compiled is None:
        if schema is None:
            raise ValueError("pass a schema or a compiled schema")
        compiled = compile_schema(schema)
    else:
        compiled = compile_schema(compiled)
    if stats is None:
        stats = FixpointStats()

    with _KernelScope(stats), _obs_tracing.span(
        "fixpoint.full", compressed=compressed, nodes=graph.node_count
    ):
        type_order = compiled.type_order
        # (type, neighbourhood signature) -> verdict; shared across components
        # so isomorphic nodes anywhere in the graph are checked once.
        if signature_memo is None:
            signature_memo = {}

        if _vectorized.enabled():
            # Global synchronous rounds over bitset rows; no condensation is
            # built, so stats.components stays 0 for vectorised runs.  The
            # kernel reseeds every node with Γ itself, so current starts empty.
            current: Dict[NodeId, Set[TypeName]] = {}
            _vectorized.stabilise(
                graph, graph.nodes, current, compiled, compressed,
                signature_memo, stats,
            )
            return Typing(current)

        current = {node: set(type_order) for node in graph.nodes}
        artifacts = {
            type_name: compiled.type_artifact(type_name) for type_name in type_order
        }
        watchers = compiled.symbol_watchers()
        components = strongly_connected_components(graph)
        stats.components = len(components)
        stabilise = _stabilise_compressed if compressed else _stabilise_plain
        for component in components:
            stabilise(
                graph, component, set(component), current,
                type_order, artifacts, watchers, signature_memo, stats,
            )
        return Typing(current)


def maximal_typing_store(
    store,
    compiled: Optional[CompiledSchema] = None,
    schema: Optional[Union[ShExSchema, CompiledSchema]] = None,
    compressed: bool = False,
    stats: Optional[FixpointStats] = None,
    signature_memo: Optional[Dict[Tuple, bool]] = None,
) -> Typing:
    """Full maximal typing of a :class:`repro.graphs.store.GraphStore`.

    Like :func:`maximal_typing_fixpoint` on ``store.graph``, but consults the
    store's automatic kind-compression view first: when the size heuristic
    selects a quotient (:meth:`repro.graphs.store.GraphStore.typing_view`),
    the quotient is typed once per *kind* under the compressed semantics and
    every node inherits its kind's types — identical to the per-node typing,
    at a fraction of the checks on clone-heavy graphs.  ``stats.mode`` reports
    ``"kinds"`` when the view was used.
    """
    if compiled is None:
        if schema is None:
            raise ValueError("pass a schema or a compiled schema")
        compiled = compile_schema(schema)
    if stats is None:
        stats = FixpointStats()
    with _KernelScope(stats):
        if not compressed:
            view = store.typing_view()
            if view is not None:
                kind_typing = kind_typing_for_view(
                    view, compiled, stats=stats, signature_memo=signature_memo
                )
                return expand_kind_typing(view, kind_typing)
        stats.mode = "full"
        return maximal_typing_fixpoint(
            store.graph, compiled=compiled, compressed=compressed, stats=stats,
            signature_memo=signature_memo,
        )


def kind_typing_for_view(
    view,
    compiled: CompiledSchema,
    stats: Optional[FixpointStats] = None,
    signature_memo: Optional[Dict[Tuple, bool]] = None,
) -> Typing:
    """Full typing of a kind-compression quotient, one entry per *kind*.

    The quotient is typed under the compressed semantics (member-wise edge
    counts as multiplicities); quotient signatures carry multiplicities, so
    they coexist with plain-shaped entries in a shared ``signature_memo``.
    Sets ``stats.mode`` to ``"kinds"``.
    """
    if stats is None:
        stats = FixpointStats()
    with _KernelScope(stats):
        kind_typing = maximal_typing_fixpoint(
            view.compressed, compiled=compiled, compressed=True, stats=stats,
            signature_memo=signature_memo,
        )
        stats.mode = "kinds"
        return kind_typing


def expand_kind_typing(view, kind_typing: Typing) -> Typing:
    """The per-node typing induced by a kind-level typing of the quotient."""
    return Typing(
        {node: kind_typing.types_of(kind) for node, kind in view.kind_of.items()}
    )


# --------------------------------------------------------------------------- #
# Incremental retyping from a delta frontier
# --------------------------------------------------------------------------- #
def affected_region(graph: Graph, seeds, store=None) -> Set[NodeId]:
    """The backward closure of ``seeds``: every node that can reach a seed.

    A node's types depend only on its out-reachable subgraph, so after an edge
    delta the typing can change exactly for the nodes from which some touched
    node is reachable — the region :func:`repro.graphs.scc.backward_closure`
    collects (a BFS over ``in_edges``; the partition maintainer seeds the
    same closure).  Seeds absent from the graph are ignored.

    When ``store`` is the :class:`repro.graphs.store.GraphStore` owning
    ``graph``, the BFS runs over the store's incrementally maintained interned
    node-id reverse adjacency (:meth:`~repro.graphs.store.GraphStore.region_closure`)
    instead of walking :class:`Edge` objects — same set, much cheaper on the
    hot incremental-retype path.
    """
    if (
        store is not None
        and getattr(store, "graph", None) is graph
        and hasattr(store, "region_closure")
    ):
        return store.region_closure(seeds)
    return backward_closure(
        graph, (node for node in seeds if graph.has_node(node))
    )


def _induced_subgraph(graph: Graph, nodes: Set[NodeId]) -> Graph:
    """The induced subgraph on ``nodes``, built from their out-edges only.

    Equivalent to :meth:`Graph.subgraph` but O(edges incident to ``nodes``)
    instead of a scan over every edge of the graph — the affected region of a
    small delta is tiny, and the SCC schedule only needs its shape.
    """
    induced = Graph(graph.name)
    induced.add_nodes(nodes)
    for node in nodes:
        for edge in graph.out_edges(node):
            if edge.target in nodes:
                induced.add_edge(node, edge.label, edge.target, edge.occur)
    return induced


def retype_incremental(
    store,
    prior_typing: Typing,
    delta,
    compiled: Optional[CompiledSchema] = None,
    schema: Optional[Union[ShExSchema, CompiledSchema]] = None,
    compressed: bool = False,
    stats: Optional[FixpointStats] = None,
    max_affected_fraction: float = 0.5,
    signature_memo: Optional[Dict[Tuple, bool]] = None,
) -> Typing:
    """Maximal typing of the *changed* graph, re-deriving only what ``delta`` can touch.

    ``store`` is a :class:`repro.graphs.store.GraphStore` (or a bare
    :class:`Graph`) already in its **new** state; ``prior_typing`` is the
    maximal typing of the state *before* ``delta`` was applied.  The result
    equals a from-scratch :func:`maximal_typing_fixpoint` of the new graph
    (the delta-parity suite asserts this pair-for-pair), computed as:

    1. collect the delta's touched nodes and their backward closure — the
       *affected region*; every node outside it keeps its prior types
       verbatim (its out-reachable subgraph is untouched, hence its slice of
       the greatest fixpoint is unchanged);
    2. reseed the affected region with the full type set ``Γ`` — sound for
       additions and removals alike, since the region is recomputed from the
       top — and drive it to its local fixpoint with the kernel's SCC
       schedule and (node, type) dirtiness machinery, reading the frozen
       types across the region boundary.

    When the affected region exceeds ``max_affected_fraction`` of the graph
    the incremental schedule would approach a full run anyway (and a large
    additive delta may grow typings across most of the prior fixpoint's
    support), so the kernel falls back to :func:`maximal_typing_store` —
    ``stats.mode`` then reports ``"full"`` or ``"kinds"`` instead of
    ``"incremental"``.

    ``signature_memo`` has the :func:`maximal_typing_fixpoint` semantics: a
    persistent per-schema verdict memo.  It pays off here in particular —
    after a small delta, most affected (node, type) checks re-pose questions
    the prior run already answered.
    """
    graph: Graph = getattr(store, "graph", store)
    if compiled is None:
        if schema is None:
            raise ValueError("pass a schema or a compiled schema")
        compiled = compile_schema(schema)
    else:
        compiled = compile_schema(compiled)
    if stats is None:
        stats = FixpointStats()

    with _KernelScope(stats), _obs_tracing.span("fixpoint.incremental") as trace_span:
        touched = [node for node in delta.touched_nodes() if graph.has_node(node)]
        stats.frontier = len(touched)
        if not touched:
            stats.mode = "unchanged"
            trace_span.annotate(mode="unchanged")
            return Typing(
                {node: prior_typing.types_of(node) for node in graph.nodes}
            )

        affected = affected_region(graph, touched, store=store)
        stats.affected = len(affected)
        trace_span.annotate(frontier=stats.frontier, affected=stats.affected)
        if len(affected) > max_affected_fraction * graph.node_count:
            if hasattr(store, "typing_view"):
                return maximal_typing_store(
                    store, compiled=compiled, compressed=compressed, stats=stats,
                    signature_memo=signature_memo,
                )
            stats.mode = "full"
            return maximal_typing_fixpoint(
                graph, compiled=compiled, compressed=compressed, stats=stats,
                signature_memo=signature_memo,
            )

        type_order = compiled.type_order
        # Affected nodes restart from the full type set; everything else keeps
        # its prior (frozen, never-mutated) assignment and is read across the
        # boundary exactly like an already-stabilised component.
        current: Dict[NodeId, Set[TypeName]] = {}
        for node in graph.nodes:
            if node in affected:
                current[node] = set(type_order)
            else:
                current[node] = prior_typing.types_of(node)
        if signature_memo is None:
            signature_memo = {}

        if _vectorized.enabled():
            _vectorized.stabilise(
                graph, affected, current, compiled, compressed,
                signature_memo, stats,
            )
            stats.mode = "incremental"
            return Typing(current)

        artifacts = {
            type_name: compiled.type_artifact(type_name) for type_name in type_order
        }
        watchers = compiled.symbol_watchers()
        components = strongly_connected_components(_induced_subgraph(graph, affected))
        stats.components = len(components)
        stabilise = _stabilise_compressed if compressed else _stabilise_plain
        for component in components:
            stabilise(
                graph, component, set(component), current,
                type_order, artifacts, watchers, signature_memo, stats,
            )
        stats.mode = "incremental"
        return Typing(current)


def retype_kinds_incremental(
    view,
    prior_kind_typing: Typing,
    view_delta,
    compiled: Optional[CompiledSchema] = None,
    schema: Optional[Union[ShExSchema, CompiledSchema]] = None,
    stats: Optional[FixpointStats] = None,
    max_affected_fraction: float = 0.5,
    signature_memo: Optional[Dict[Tuple, bool]] = None,
) -> Typing:
    """Kind-level typing of a maintained quotient, re-deriving only what changed.

    The compressed-path analogue of :func:`retype_incremental`: ``view`` is a
    store's *maintained* kind-compression view
    (:meth:`repro.graphs.store.GraphStore.typing_view`) already at the new
    version, ``prior_kind_typing`` the quotient typing of an earlier version,
    and ``view_delta`` the composed :class:`repro.graphs.partition.ViewDelta`
    between them (:meth:`repro.graphs.store.GraphStore.view_delta`) — kind
    ids must be comparable, i.e. the epoch must not have changed.

    ``view_delta.changed`` — the kinds that are new or whose quotient
    out-edge rows changed — is exactly the set of quotient nodes whose
    out-reachable subgraph may differ, so its backward closure is reseeded
    with ``Γ`` and stabilised under the compressed semantics while every
    other kind keeps its prior types verbatim (retired kinds simply drop
    out).  The result equals a from-scratch quotient typing pair-for-pair;
    past ``max_affected_fraction`` the kernel falls back to one
    (``stats.mode`` then reports ``"kinds"`` instead of
    ``"kinds-incremental"``).
    """
    if compiled is None:
        if schema is None:
            raise ValueError("pass a schema or a compiled schema")
        compiled = compile_schema(schema)
    else:
        compiled = compile_schema(compiled)
    if stats is None:
        stats = FixpointStats()

    with _KernelScope(stats), _obs_tracing.span("fixpoint.kinds-incremental") as trace_span:
        quotient = view.compressed
        seeds = [kind for kind in view_delta.changed if quotient.has_node(kind)]
        stats.frontier = len(seeds)
        if not seeds:
            stats.mode = "unchanged"
            trace_span.annotate(mode="unchanged")
            return Typing(
                {kind: prior_kind_typing.types_of(kind) for kind in quotient.nodes}
            )

        affected = affected_region(quotient, seeds)
        stats.affected = len(affected)
        trace_span.annotate(frontier=stats.frontier, affected=stats.affected)
        if len(affected) > max_affected_fraction * quotient.node_count:
            return kind_typing_for_view(
                view, compiled, stats=stats, signature_memo=signature_memo
            )

        type_order = compiled.type_order
        current: Dict[NodeId, Set[TypeName]] = {}
        for kind in quotient.nodes:
            if kind in affected:
                current[kind] = set(type_order)
            else:
                current[kind] = prior_kind_typing.types_of(kind)
        if signature_memo is None:
            signature_memo = {}

        if _vectorized.enabled():
            _vectorized.stabilise(
                quotient, affected, current, compiled, True,
                signature_memo, stats,
            )
            stats.mode = "kinds-incremental"
            return Typing(current)

        artifacts = {
            type_name: compiled.type_artifact(type_name) for type_name in type_order
        }
        watchers = compiled.symbol_watchers()
        components = strongly_connected_components(
            _induced_subgraph(quotient, affected)
        )
        stats.components = len(components)
        for component in components:
            _stabilise_compressed(
                quotient, component, set(component), current,
                type_order, artifacts, watchers, signature_memo, stats,
            )
        stats.mode = "kinds-incremental"
        return Typing(current)


# --------------------------------------------------------------------------- #
# Dirtiness propagation (shared by both semantics)
# --------------------------------------------------------------------------- #
def _mark_dirty(
    graph: Graph,
    node: NodeId,
    removed: Sequence[TypeName],
    member_set: Set[NodeId],
    current: Dict[NodeId, Set[TypeName]],
    watchers: Dict[object, Tuple[TypeName, ...]],
    dirty: Dict[NodeId, Set[TypeName]],
) -> List[NodeId]:
    """Mark the pairs invalidated by ``node`` losing ``removed`` types.

    Only predecessors inside the active component are marked: predecessors in
    other components are upstream in the condensation, hence not yet processed
    and still fully dirty.  Returns the members that gained dirty types.
    """
    touched: List[NodeId] = []
    for edge in graph.in_edges(node):
        predecessor = edge.source
        if predecessor not in member_set:
            continue
        predecessor_types = current[predecessor]
        marks = dirty[predecessor]
        before = len(marks)
        for lost in removed:
            for watcher in watchers.get((edge.label, lost), ()):
                if watcher in predecessor_types:
                    marks.add(watcher)
        if len(marks) != before:
            touched.append(predecessor)
    return touched


# --------------------------------------------------------------------------- #
# Plain semantics: per-pair Gauss-Seidel within a component
# --------------------------------------------------------------------------- #
def _stabilise_plain(
    graph: Graph,
    component: Tuple[NodeId, ...],
    member_set: Set[NodeId],
    current: Dict[NodeId, Set[TypeName]],
    type_order: Tuple[TypeName, ...],
    artifacts: Dict[TypeName, object],
    watchers: Dict[object, Tuple[TypeName, ...]],
    signature_memo: Dict[Tuple, bool],
    stats: FixpointStats,
) -> None:
    dirty: Dict[NodeId, Set[TypeName]] = {
        node: set(current[node]) for node in component
    }
    queue: deque = deque(component)  # components come pre-sorted by repr
    queued: Set[NodeId] = set(component)
    while queue:
        node = queue.popleft()
        queued.discard(node)
        pending = dirty[node]
        if not pending:
            continue
        dirty[node] = set()
        node_types = current[node]
        removed: List[TypeName] = []
        for type_name in type_order:
            if type_name not in pending or type_name not in node_types:
                continue
            stats.checks += 1
            if not _check_plain(
                graph, node, artifacts[type_name], current,
                type_order, signature_memo, stats,
            ):
                node_types.discard(type_name)
                removed.append(type_name)
        if removed:
            stats.removals += len(removed)
            for touched in _mark_dirty(
                graph, node, removed, member_set, current, watchers, dirty
            ):
                if touched not in queued:
                    queue.append(touched)
                    queued.add(touched)


def _check_plain(
    graph: Graph,
    node: NodeId,
    artifact,
    current: Dict[NodeId, Set[TypeName]],
    type_order: Tuple[TypeName, ...],
    signature_memo: Dict[Tuple, bool],
    stats: FixpointStats,
) -> bool:
    symbol_set = artifact.symbol_set
    groups: Dict[Tuple[str, Tuple[TypeName, ...]], int] = {}
    for edge in graph.out_edges(node):
        target_types = current.get(edge.target, ())
        options = tuple(
            type_name
            for type_name in type_order
            if type_name in target_types and (edge.label, type_name) in symbol_set
        )
        if not options:
            stats.shortcut_failures += 1
            return False
        key = (edge.label, options)
        groups[key] = groups.get(key, 0) + 1
    signature = (artifact.type_name, tuple(sorted(groups.items())))
    known = signature_memo.get(signature)
    if known is not None:
        stats.signature_hits += 1
        return known
    verdict = satisfies_type_groups(artifact, groups)
    signature_memo[signature] = verdict
    return verdict


# --------------------------------------------------------------------------- #
# Compressed semantics: round-based Jacobi sweeps with batched solving
# --------------------------------------------------------------------------- #
def _stabilise_compressed(
    graph: Graph,
    component: Tuple[NodeId, ...],
    member_set: Set[NodeId],
    current: Dict[NodeId, Set[TypeName]],
    type_order: Tuple[TypeName, ...],
    artifacts: Dict[TypeName, object],
    watchers: Dict[object, Tuple[TypeName, ...]],
    signature_memo: Dict[Tuple, bool],
    stats: FixpointStats,
) -> None:
    """Stabilise one component by synchronous rounds of batched checks.

    Each round snapshots every dirty surviving pair, decides all of them
    against the *current* relation (one batched MILP for the non-memoised
    ones), then applies the removals together and marks the next round's
    dirtiness.  Removing several pairs at once is sound because satisfaction
    is monotone in the relation — a pair invalid under the snapshot stays
    invalid under any smaller relation — and chaotic iteration converges to
    the same greatest fixpoint as the per-pair schedule.
    """
    dirty: Dict[NodeId, Set[TypeName]] = {
        node: set(current[node]) for node in component
    }
    while True:
        batch: List[Tuple[NodeId, TypeName]] = []
        for node in component:
            pending = dirty[node]
            if not pending:
                continue
            node_types = current[node]
            for type_name in type_order:
                if type_name in pending and type_name in node_types:
                    batch.append((node, type_name))
            dirty[node] = set()
        if not batch:
            return
        stats.rounds += 1
        verdicts = _check_compressed_batch(
            graph, batch, current, type_order, artifacts, signature_memo, stats
        )
        removed_by_node: Dict[NodeId, List[TypeName]] = {}
        for (node, type_name), verdict in zip(batch, verdicts):
            if not verdict:
                current[node].discard(type_name)
                removed_by_node.setdefault(node, []).append(type_name)
        for node, removed in removed_by_node.items():
            stats.removals += len(removed)
            _mark_dirty(graph, node, removed, member_set, current, watchers, dirty)


def _check_compressed_batch(
    graph: Graph,
    pairs: Sequence[Tuple[NodeId, TypeName]],
    current: Dict[NodeId, Set[TypeName]],
    type_order: Tuple[TypeName, ...],
    artifacts: Dict[TypeName, object],
    signature_memo: Dict[Tuple, bool],
    stats: FixpointStats,
) -> List[bool]:
    """Decide one round of compressed checks; one solver batch for the misses."""
    verdicts: List[Optional[bool]] = [None] * len(pairs)
    pending_positions: Dict[Tuple, List[int]] = {}
    pending_order: List[Tuple] = []
    pending_problems: List[Tuple] = []
    for position, (node, type_name) in enumerate(pairs):
        stats.checks += 1
        artifact = artifacts[type_name]
        described = _compressed_signature(graph, node, artifact, current, type_order)
        if described is None:
            stats.shortcut_failures += 1
            verdicts[position] = False  # a mandatory edge has no candidate type
            continue
        signature, edge_descriptions = described
        known = signature_memo.get(signature)
        if known is not None:
            stats.signature_hits += 1
            verdicts[position] = known
            continue
        positions = pending_positions.get(signature)
        if positions is not None:
            positions.append(position)
            continue
        pending_positions[signature] = [position]
        pending_order.append(signature)
        pending_problems.append(_assemble_problem(artifact, edge_descriptions))
    if pending_problems:
        stats.solver_problems += len(pending_problems)
        solved = solve_problems(pending_problems)
        for signature, verdict in zip(pending_order, solved):
            signature_memo[signature] = verdict
            for position in pending_positions[signature]:
                verdicts[position] = verdict
    return [bool(verdict) for verdict in verdicts]


def _compressed_signature(
    graph: Graph,
    node: NodeId,
    artifact,
    current: Dict[NodeId, Set[TypeName]],
    type_order: Tuple[TypeName, ...],
):
    """``(signature, edge descriptions)`` for one compressed check, or ``None``.

    ``None`` means the check fails outright: some edge with positive
    multiplicity has no candidate target type in the rule's alphabet.
    Zero-multiplicity edges are dropped — their parallel-edge variables are
    forced to zero, contributing nothing to any symbol count.
    """
    symbol_set = artifact.symbol_set
    descriptions: List[Tuple[str, int, Tuple[TypeName, ...]]] = []
    for edge in graph.out_edges(node):
        multiplicity = edge.occur.lower
        target_types = current.get(edge.target, ())
        options = tuple(
            type_name
            for type_name in type_order
            if type_name in target_types and (edge.label, type_name) in symbol_set
        )
        if not options:
            if multiplicity > 0:
                return None
            continue
        if multiplicity == 0:
            continue
        descriptions.append((edge.label, multiplicity, options))
    signature = (artifact.type_name, tuple(sorted(descriptions)))
    return signature, descriptions


def _assemble_problem(artifact, edge_descriptions) -> Tuple:
    """Build the normalised linear system of one compressed check.

    Follows the encoding of Proposition 6.2 — variables ``y_{e,τ}`` split each
    compressed edge's multiplicity across candidate types, per-symbol totals
    ``z_{a::τ}`` must satisfy ``ψ_{δ(t)}(z̄, 1)`` — but assembles coefficient
    rows directly against the type's cached normalised template instead of
    building and re-normalising a formula tree per check.
    """
    z_vars, template_conjuncts = artifact.normalised_template()
    if not template_conjuncts:
        return ()  # ψ is unsatisfiable on its own
    rows: List[Tuple[Tuple[Tuple[str, int], ...], int]] = []
    contributions: Dict[object, List[str]] = {}
    for edge_index, (label, multiplicity, options) in enumerate(edge_descriptions):
        items = []
        for type_name in options:
            name = f"y!{edge_index}!{type_name}"
            items.append((name, 1))
            contributions.setdefault((label, type_name), []).append(name)
        rows.append((tuple(sorted(items)), multiplicity))
    for symbol in artifact.sorted_alphabet:
        items = [(z_vars[symbol], 1)]
        items.extend((name, -1) for name in contributions.get(symbol, ()))
        rows.append((tuple(sorted(items)), 0))
    call_rows = tuple(rows)
    return tuple(
        (call_rows + equalities, inequalities)
        for equalities, inequalities in template_conjuncts
    )
