"""The batched, parallel, cache-aware containment engine.

:class:`ContainmentEngine` runs many ``L(S1) ⊆ L(S2)`` checks as one batch:
schemas are compiled once per distinct content (classification and shape
graphs are the expensive shared parts), results are cached by the fingerprint
pair plus the search options, and cache misses fan out to the configured
executor backend.  The counter-example searches are seeded, so payloads are
deterministic and byte-identical across backends.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from repro.containment.api import ContainmentResult, contains_compiled
from repro.engine.base import BatchEngine
from repro.engine.compiled import CompiledSchema, compile_schema, schema_fingerprint
from repro.engine.jobs import ContainmentJob
from repro.schema.shex import ShExSchema

JobLike = Union[ContainmentJob, Tuple[ShExSchema, ShExSchema]]


def _containment_payload(job: ContainmentJob) -> Tuple[str, Dict]:
    """Run one containment job to a deterministic (verdict, payload) pair."""
    options = dict(job.options)
    result: ContainmentResult = contains_compiled(
        compile_schema(job.left), compile_schema(job.right), **options
    )
    counterexample = None
    if result.counterexample is not None:
        counterexample = tuple(
            sorted(
                f"{source!r} -{label}-> {target!r}"
                for source, label, target in result.counterexample.triples()
            )
        )
    payload = {
        "method": result.method,
        "left_class": str(result.left_class),
        "right_class": str(result.right_class),
        "counterexample": counterexample,
    }
    return result.verdict.value, payload


def _process_worker(job: ContainmentJob) -> Tuple[str, Dict]:
    """Module-level worker for the process backend (must be picklable)."""
    return _containment_payload(job)


class ContainmentEngine(BatchEngine):
    """Batch containment with pluggable executors and a fingerprint-keyed cache.

    Usage::

        engine = ContainmentEngine(backend="process")
        engine.submit(old_schema, new_schema)
        engine.submit(new_schema, old_schema, max_nodes=20)
        report = engine.run_batch()
    """

    kind = "containment"

    def compile(self, schema: Union[ShExSchema, CompiledSchema]) -> CompiledSchema:
        """Compile a schema through the shared per-process intern table."""
        return compile_schema(schema)

    def submit(
        self,
        left: Union[ShExSchema, CompiledSchema],
        right: Union[ShExSchema, CompiledSchema],
        label: str = "",
        **options,
    ) -> int:
        """Queue ``L(left) ⊆ L(right)``; extra keywords tune the search budgets."""
        left_compiled = self.compile(left)
        right_compiled = self.compile(right)
        self._pending.append(
            ContainmentJob.make(
                left_compiled.schema, right_compiled.schema, label=label, **options
            )
        )
        return len(self._pending) - 1

    # ------------------------------------------------------------------ #
    # BatchEngine hooks
    # ------------------------------------------------------------------ #
    def _coerce_job(self, job: JobLike) -> ContainmentJob:
        if isinstance(job, ContainmentJob):
            return job
        left, right = job
        return ContainmentJob(left, right)

    def _key_job(self, job: ContainmentJob, memo: Dict) -> Tuple:
        # Schema fingerprints are memoized by object identity per batch, so a
        # round-robin of one schema against many others hashes it once.
        fingerprints = []
        for schema in (job.left, job.right):
            schema_key = ("schema", id(schema))
            fingerprint = memo.get(schema_key)
            if fingerprint is None:
                fingerprint = schema_fingerprint(schema)
                memo[schema_key] = fingerprint
            fingerprints.append(fingerprint)
        return ("containment", fingerprints[0], fingerprints[1], job.options)

    def _execute_single(self, job: ContainmentJob) -> Tuple[str, Dict]:
        return _containment_payload(job)

    _job_worker = staticmethod(_process_worker)
