"""Job and result models for the batch engines.

A *job* is one unit of work — validate one graph against one schema, or check
one schema-pair containment.  A :class:`JobResult` is the structured outcome:
the verdict, a deterministic payload (identical across executor backends for
the same job), the cache key that identified the job, and timing/caching
bookkeeping.  An :class:`EngineReport` bundles a whole batch together with the
engine's cache statistics so callers — and the CLI — can see exactly how much
work was served from cache versus recomputed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Tuple

from repro.engine.cache import CacheStats
from repro.graphs.graph import Graph
from repro.schema.shex import ShExSchema

NodeId = Hashable


@dataclass(frozen=True)
class ValidationJob:
    """One validation unit: a graph checked against a schema."""

    graph: Graph
    schema: ShExSchema
    compressed: bool = False
    label: str = ""


@dataclass(frozen=True)
class ContainmentJob:
    """One containment unit: ``L(left) ⊆ L(right)``, with search options."""

    left: ShExSchema
    right: ShExSchema
    options: Tuple[Tuple[str, Any], ...] = ()
    label: str = ""

    @staticmethod
    def make(left: ShExSchema, right: ShExSchema, label: str = "", **options) -> "ContainmentJob":
        """Build a job with keyword search options (normalised for hashing)."""
        return ContainmentJob(left, right, tuple(sorted(options.items())), label)


@dataclass(frozen=True)
class JobResult:
    """The structured outcome of one job.

    ``verdict`` and ``payload`` are pure functions of the job inputs — they are
    what backend-parity means.  ``seconds`` and ``cached`` describe *this* run:
    a cache hit reports near-zero seconds and ``cached=True``.
    """

    index: int
    kind: str
    label: str
    key: Tuple
    verdict: str
    payload: Mapping[str, Any]
    seconds: float
    cached: bool

    def __bool__(self) -> bool:
        return self.verdict in ("valid", "contained")

    def canonical(self) -> str:
        """A deterministic one-line rendering (used for backend-parity checks)."""
        items = ";".join(f"{k}={self.payload[k]!r}" for k in sorted(self.payload))
        return f"{self.kind}:{self.verdict}:{items}"


@dataclass
class EngineReport:
    """A batch outcome: per-job results plus engine-level statistics."""

    results: Tuple[JobResult, ...]
    backend: str
    seconds: float
    cache: CacheStats
    jobs_total: int = 0
    jobs_from_cache: int = 0

    def __post_init__(self):
        if not self.jobs_total:
            self.jobs_total = len(self.results)
        self.jobs_from_cache = sum(1 for result in self.results if result.cached)

    def verdicts(self) -> Tuple[str, ...]:
        """The verdict of every job, in submission order."""
        return tuple(result.verdict for result in self.results)

    def canonical(self) -> str:
        """Deterministic rendering of the whole batch (backend-parity checks)."""
        return "\n".join(result.canonical() for result in self.results)

    @property
    def all_ok(self) -> bool:
        """True when every job got a positive verdict (valid / contained)."""
        return all(bool(result) for result in self.results)

    def summary(self) -> str:
        """A one-line human rendering: counts, wall time, cache statistics."""
        ok = sum(1 for result in self.results if result)
        return (
            f"{self.jobs_total} job(s) in {self.seconds:.3f}s on backend "
            f"{self.backend!r}: {ok} positive, {self.jobs_total - ok} other; "
            f"{self.jobs_from_cache} from cache ({self.cache})"
        )


class Stopwatch:
    """Tiny helper: ``with Stopwatch() as clock: ...; clock.seconds``."""

    __slots__ = ("start", "seconds")

    def __enter__(self) -> "Stopwatch":
        self.start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc_info) -> bool:
        self.seconds = time.perf_counter() - self.start
        return False
