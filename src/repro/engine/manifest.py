"""Batch manifests: declare many (data, schema) validation jobs in one file.

Two formats are accepted, chosen by file extension:

* ``.json`` — ``{"jobs": [{"data": "g.ttl", "schema": "s.shex",
  "ntriples": false, "label": "optional"}, ...]}``;
* anything else — a plain text file with one ``data-path schema-path`` pair per
  line; blank lines and ``#`` comments are ignored.

Relative paths are resolved against the manifest's directory.  Whether a data
file is N-Triples is autodetected from the ``.nt`` extension unless the JSON
entry pins ``"ntriples"`` explicitly.  Loading is cached per path, so a
manifest that validates fifty graphs against one schema parses that schema
once.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine.jobs import ValidationJob
from repro.errors import ManifestError
from repro.graphs.graph import Graph
from repro.rdf.convert import rdf_to_simple_graph
from repro.rdf.parser import parse_ntriples, parse_turtle_lite
from repro.schema.parser import parse_schema
from repro.schema.shex import ShExSchema


@dataclass(frozen=True)
class ManifestEntry:
    """One declared job: paths (already resolved) plus parse options."""

    data: str
    schema: str
    ntriples: Optional[bool] = None
    label: str = ""

    @property
    def data_is_ntriples(self) -> bool:
        """Whether the data file parses as N-Triples (pinned or ``.nt``-detected)."""
        if self.ntriples is not None:
            return self.ntriples
        return self.data.endswith(".nt")


def parse_manifest(text: str, name: str = "", base_dir: str = "") -> List[ManifestEntry]:
    """Parse manifest text (JSON when ``name`` ends in ``.json``, else plain)."""
    if name.endswith(".json"):
        return _parse_json_manifest(text, name, base_dir)
    return _parse_plain_manifest(text, name, base_dir)


def _resolve(base_dir: str, path: str) -> str:
    if not base_dir or os.path.isabs(path):
        return path
    return os.path.join(base_dir, path)


def _parse_plain_manifest(text: str, name: str, base_dir: str) -> List[ManifestEntry]:
    entries: List[ManifestEntry] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ManifestError(
                f"{name or 'manifest'}:{line_number}: expected 'data-path schema-path', "
                f"got {line!r}"
            )
        data, schema = parts
        entries.append(
            ManifestEntry(
                data=_resolve(base_dir, data),
                schema=_resolve(base_dir, schema),
                label=f"{data} vs {schema}",
            )
        )
    return entries


def _parse_json_manifest(text: str, name: str, base_dir: str) -> List[ManifestEntry]:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ManifestError(f"{name}: invalid JSON manifest: {exc}") from exc
    jobs = document.get("jobs") if isinstance(document, dict) else None
    if not isinstance(jobs, list):
        raise ManifestError(f"{name}: a JSON manifest must be an object with a 'jobs' list")
    entries: List[ManifestEntry] = []
    for position, job in enumerate(jobs):
        if not isinstance(job, dict) or "data" not in job or "schema" not in job:
            raise ManifestError(
                f"{name}: job #{position} must be an object with 'data' and 'schema' keys"
            )
        ntriples = job.get("ntriples")
        if ntriples is not None and not isinstance(ntriples, bool):
            raise ManifestError(f"{name}: job #{position}: 'ntriples' must be a boolean")
        entries.append(
            ManifestEntry(
                data=_resolve(base_dir, job["data"]),
                schema=_resolve(base_dir, job["schema"]),
                ntriples=ntriples,
                label=job.get("label", f"{job['data']} vs {job['schema']}"),
            )
        )
    return entries


def load_manifest(path: str) -> List[ManifestEntry]:
    """Read and parse a manifest file; paths resolve against its directory."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_manifest(text, name=path, base_dir=os.path.dirname(os.path.abspath(path)))


def load_jobs(entries: List[ManifestEntry]) -> List[ValidationJob]:
    """Materialise manifest entries into validation jobs, caching file loads."""
    schemas: Dict[str, ShExSchema] = {}
    graphs: Dict[str, Graph] = {}
    jobs: List[ValidationJob] = []
    for entry in entries:
        schema = schemas.get(entry.schema)
        if schema is None:
            with open(entry.schema, "r", encoding="utf-8") as handle:
                schema = parse_schema(handle.read(), name=entry.schema)
            schemas[entry.schema] = schema
        graph = graphs.get(entry.data)
        if graph is None:
            with open(entry.data, "r", encoding="utf-8") as handle:
                text = handle.read()
            rdf = (
                parse_ntriples(text, name=entry.data)
                if entry.data_is_ntriples
                else parse_turtle_lite(text, name=entry.data)
            )
            graph = rdf_to_simple_graph(rdf, name=entry.data)
            graphs[entry.data] = graph
        jobs.append(ValidationJob(graph=graph, schema=schema, label=entry.label))
    return jobs
