"""Pluggable execution backends for the validation and containment engines.

Three interchangeable backends implement a single ``map_ordered`` contract —
apply a callable to every item, returning results in input order:

* ``serial`` — plain loop in the calling thread; the reference backend every
  other backend must agree with byte-for-byte;
* ``thread`` — a :class:`concurrent.futures.ThreadPoolExecutor`; effective
  when the underlying work releases the GIL (the SciPy MILP solver does) or is
  I/O-bound (loading manifests);
* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`; true
  parallelism for the CPU-bound Python checks.  Jobs and results must be
  picklable, which is why the process engines ship plain schemas/graphs and
  recompile inside the workers (compilation is interned per process, so each
  distinct schema is compiled once per worker, not once per job).

Backends are deliberately tiny: the engines own chunking, caching, and result
assembly, so a backend only needs ordered map.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")

BACKENDS = ("serial", "thread", "process")


class SerialExecutor:
    """The reference backend: an ordinary loop, no concurrency."""

    name = "serial"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = 1

    def map_ordered(
        self, fn: Callable[[Item], Result], items: Sequence[Item]
    ) -> List[Result]:
        """Apply ``fn`` to every item, in order, in the calling thread."""
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release; present for backend interchangeability."""


class _PoolExecutor:
    """Shared shape of the thread/process backends."""

    name = "pool"
    _pool_cls = ThreadPoolExecutor

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._pool_cls(max_workers=self.max_workers)
        return self._pool

    def map_ordered(
        self, fn: Callable[[Item], Result], items: Sequence[Item]
    ) -> List[Result]:
        """Apply ``fn`` to every item through the pool; results in input order."""
        if len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        return list(pool.map(fn, items))

    def close(self) -> None:
        """Shut the pool down; a later ``map_ordered`` re-creates it lazily."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend (shared memory; benefits GIL-releasing work)."""

    name = "thread"
    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend (true parallelism; jobs must be picklable)."""

    name = "process"
    _pool_cls = ProcessPoolExecutor


def get_executor(backend: str, max_workers: Optional[int] = None):
    """Instantiate a backend by name (``serial`` / ``thread`` / ``process``)."""
    if backend == "serial":
        return SerialExecutor(max_workers)
    if backend == "thread":
        return ThreadExecutor(max_workers)
    if backend == "process":
        return ProcessExecutor(max_workers)
    raise ValueError(
        f"unknown executor backend {backend!r}; expected one of {', '.join(BACKENDS)}"
    )


def chunked(items: Sequence[Item], chunk_size: int) -> List[List[Item]]:
    """Split a sequence into consecutive chunks of at most ``chunk_size`` items."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [list(items[i : i + chunk_size]) for i in range(0, len(items), chunk_size)]
