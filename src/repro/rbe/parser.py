"""A small recursive-descent parser for the textual form of regular bag expressions.

The accepted syntax mirrors the paper's notation as closely as plain text allows::

    eps                      the empty-bag expression ε
    a                        a plain symbol
    a :: t                   a shape-expression symbol (label ``a``, type ``t``)
    E1 || E2     or  E1 , E2 unordered concatenation
    E1 | E2                  disjunction
    E1 & E2                  intersection
    E?   E*   E+             repetition with a basic interval
    E^[n;m]  E[n;m]  E^[2]   repetition with an explicit interval
    ( E )                    grouping

Operator precedence, loosest to tightest: ``|`` < ``&`` < ``||``/`,` < postfix
repetition.  Example from Figure 1 of the paper::

    descr :: Literal, reportedBy :: User, reproducedBy :: Employee?, related :: Bug*
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from repro.core.intervals import Interval
from repro.errors import RBESyntaxError
from repro.rbe.ast import (
    EPSILON,
    RBE,
    Concatenation,
    Disjunction,
    Intersection,
    Repetition,
    SymbolAtom,
)


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<CONCAT>\|\||,)
  | (?P<DISJ>\|)
  | (?P<AND>&)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<DCOLON>::)
  | (?P<INTERVAL>\[[^\]]*\])
  | (?P<CARET>\^)
  | (?P<OPT>\?)
  | (?P<STAR>\*)
  | (?P<PLUS>\+)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_\-']*|\d+)
  | (?P<EPS>ε)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise RBESyntaxError(f"unexpected character {text[position]!r} at offset {position}")
        kind = match.lastgroup
        value = match.group()
        position = match.end()
        if kind == "WS":
            continue
        tokens.append(_Token(kind, value, match.start()))
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[_Token], source: str):
        self._tokens = tokens
        self._source = source
        self._index = 0

    # -- token utilities ----------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise RBESyntaxError(f"unexpected end of expression in {self._source!r}")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._advance()
        if token.kind != kind:
            raise RBESyntaxError(
                f"expected {kind} but found {token.text!r} at offset {token.position}"
            )
        return token

    # -- grammar -------------------------------------------------------------
    def parse(self) -> RBE:
        expr = self._parse_disjunction()
        leftover = self._peek()
        if leftover is not None:
            raise RBESyntaxError(
                f"unexpected trailing input {leftover.text!r} at offset {leftover.position}"
            )
        return expr

    def _parse_disjunction(self) -> RBE:
        operands = [self._parse_intersection()]
        while self._peek() is not None and self._peek().kind == "DISJ":
            self._advance()
            operands.append(self._parse_intersection())
        if len(operands) == 1:
            return operands[0]
        return Disjunction(tuple(operands))

    def _parse_intersection(self) -> RBE:
        operands = [self._parse_concatenation()]
        while self._peek() is not None and self._peek().kind == "AND":
            self._advance()
            operands.append(self._parse_concatenation())
        if len(operands) == 1:
            return operands[0]
        return Intersection(tuple(operands))

    def _parse_concatenation(self) -> RBE:
        operands = [self._parse_postfix()]
        while self._peek() is not None and self._peek().kind == "CONCAT":
            self._advance()
            operands.append(self._parse_postfix())
        if len(operands) == 1:
            return operands[0]
        return Concatenation(tuple(operands))

    def _parse_postfix(self) -> RBE:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "OPT":
                self._advance()
                expr = Repetition(expr, Interval.of("?"))
            elif token.kind == "STAR":
                self._advance()
                expr = Repetition(expr, Interval.of("*"))
            elif token.kind == "PLUS":
                self._advance()
                expr = Repetition(expr, Interval.of("+"))
            elif token.kind == "INTERVAL":
                self._advance()
                expr = Repetition(expr, Interval.parse(token.text))
            elif token.kind == "CARET":
                self._advance()
                follow = self._advance()
                if follow.kind == "INTERVAL":
                    expr = Repetition(expr, Interval.parse(follow.text))
                elif follow.kind == "NAME" and follow.text.isdigit():
                    expr = Repetition(expr, Interval.singleton(int(follow.text)))
                elif follow.kind in ("OPT", "STAR", "PLUS"):
                    expr = Repetition(expr, Interval.of(follow.text))
                else:
                    raise RBESyntaxError(
                        f"expected an interval after '^' at offset {follow.position}"
                    )
            else:
                break
        return expr

    def _parse_primary(self) -> RBE:
        token = self._advance()
        if token.kind == "LPAREN":
            expr = self._parse_disjunction()
            self._expect("RPAREN")
            return expr
        if token.kind == "EPS":
            return EPSILON
        if token.kind == "NAME":
            if token.text in ("eps", "epsilon", "EPS"):
                return EPSILON
            label = token.text
            if self._peek() is not None and self._peek().kind == "DCOLON":
                self._advance()
                type_token = self._expect("NAME")
                return SymbolAtom((label, type_token.text))
            return SymbolAtom(label)
        raise RBESyntaxError(
            f"unexpected token {token.text!r} at offset {token.position}"
        )


def parse_rbe(text: str) -> RBE:
    """Parse the textual form of a regular bag expression.

    >>> parse_rbe("a || b?")
    Concatenation(operands=(SymbolAtom(symbol='a'), Repetition(operand=SymbolAtom(symbol='b'), interval=Interval(0, 1))))
    """
    stripped = text.strip()
    if not stripped:
        return EPSILON
    return _Parser(_tokenize(stripped), text).parse()
