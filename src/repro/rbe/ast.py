"""Abstract syntax of regular bag expressions (RBE), Section 2 of the paper.

The grammar is::

    E ::= ε | a | (E | E) | (E || E) | E^I

where ``a`` ranges over an alphabet of symbols and ``I`` over occurrence
intervals.  Semantics (bag languages):

* ``L(ε) = {ε}`` — the language containing only the empty bag,
* ``L(a) = {{|a|}}``,
* ``L(E1 | E2) = L(E1) ∪ L(E2)`` — disjunction,
* ``L(E1 || E2) = L(E1) ⊎ L(E2)`` — unordered concatenation (bag union of languages),
* ``L(E^I) = ⋃_{i ∈ I} L(E)^i`` — unordered repetition.

The paper additionally uses intersection ``E1 ∩ E2`` when encoding validation in
Presburger arithmetic (Section 6.1); we support it as a first-class node.

Symbols are arbitrary hashable values.  Plain RBEs over predicate names use
strings; *shape expressions* are RBEs over ``Σ × Γ`` and use ``(label, type)``
pairs — the helper :func:`repro.rbe.ast.atom` builds either form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Hashable, Iterator, Optional, Tuple

from repro.core.intervals import Interval, ONE, ZERO

Symbol = Hashable


class RBE:
    """Base class for regular bag expression nodes.

    Expression objects are immutable; structural equality and hashing are
    provided by the dataclass machinery of each node type.
    """

    __slots__ = ()

    def __reduce__(self):
        # Frozen dataclasses with manual __slots__ cannot use pickle's default
        # state protocol (__setstate__ would assign to frozen fields); rebuild
        # through the constructor instead so expressions can cross process
        # boundaries (the engine's multiprocessing backend relies on this).
        return (type(self), tuple(getattr(self, name) for name in self.__slots__))

    # -- structural queries ------------------------------------------------
    def children(self) -> Tuple["RBE", ...]:
        """Immediate sub-expressions."""
        return ()

    def iter_nodes(self) -> Iterator["RBE"]:
        """Pre-order traversal of all nodes of the expression tree."""
        yield self
        for child in self.children():
            yield from child.iter_nodes()

    def size(self) -> int:
        """Number of nodes of the expression tree (a syntactic size measure)."""
        return sum(1 for _ in self.iter_nodes())

    def alphabet(self) -> FrozenSet[Symbol]:
        """The set of symbols occurring in the expression."""
        return frozenset(
            node.symbol for node in self.iter_nodes() if isinstance(node, SymbolAtom)
        )

    def symbol_occurrences(self) -> Tuple[Symbol, ...]:
        """All symbol occurrences in syntactic order (with repetitions)."""
        return tuple(
            node.symbol for node in self.iter_nodes() if isinstance(node, SymbolAtom)
        )

    # -- semantic helpers ----------------------------------------------------
    def nullable(self) -> bool:
        """True when the empty bag ε belongs to the language."""
        raise NotImplementedError

    def size_interval(self) -> Interval:
        """An interval containing the possible total sizes of bags in the language.

        The bound is exact for expressions without intersection; for
        intersection nodes it is the intersection of the operand bounds
        (an over-approximation of the true size set, which is sufficient for
        the pruning purposes it is used for).
        """
        raise NotImplementedError

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> "RBE":
        """A copy of the expression with every symbol replaced by ``fn(symbol)``."""
        raise NotImplementedError

    def rename_types(self, fn: Callable[[Hashable], Hashable]) -> "RBE":
        """For shape expressions over ``(label, type)`` pairs, rename the type part."""
        def rename(symbol: Symbol) -> Symbol:
            if isinstance(symbol, tuple) and len(symbol) == 2:
                return (symbol[0], fn(symbol[1]))
            return symbol

        return self.map_symbols(rename)

    # -- operator sugar -------------------------------------------------------
    def __or__(self, other: "RBE") -> "RBE":
        """Disjunction ``E1 | E2``."""
        return Disjunction((self, other))

    def __and__(self, other: "RBE") -> "RBE":
        """Intersection ``E1 ∩ E2``."""
        return Intersection((self, other))

    def __matmul__(self, other: "RBE") -> "RBE":
        """Unordered concatenation ``E1 || E2`` (spelled ``E1 @ E2`` in Python)."""
        return Concatenation((self, other))

    def repeat(self, interval) -> "RBE":
        """Unordered repetition ``E^I``."""
        return Repetition(self, Interval.of(interval))

    def opt(self) -> "RBE":
        """Shorthand for ``E^?``."""
        return self.repeat("?")

    def star(self) -> "RBE":
        """Shorthand for ``E^*``."""
        return self.repeat("*")

    def plus(self) -> "RBE":
        """Shorthand for ``E^+``."""
        return self.repeat("+")


@dataclass(frozen=True)
class Epsilon(RBE):
    """The expression ε whose language is the singleton ``{ε}``."""

    __slots__ = ()

    def nullable(self) -> bool:
        return True

    def size_interval(self) -> Interval:
        return ZERO

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> "RBE":
        return self

    def __str__(self) -> str:
        return "eps"


@dataclass(frozen=True)
class SymbolAtom(RBE):
    """A single symbol ``a`` whose language is ``{{|a|}}``."""

    symbol: Symbol

    __slots__ = ("symbol",)

    def nullable(self) -> bool:
        return False

    def size_interval(self) -> Interval:
        return ONE

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> "RBE":
        return SymbolAtom(fn(self.symbol))

    def __str__(self) -> str:
        if isinstance(self.symbol, tuple) and len(self.symbol) == 2:
            return f"{self.symbol[0]}::{self.symbol[1]}"
        return str(self.symbol)


@dataclass(frozen=True)
class Disjunction(RBE):
    """Disjunction ``E1 | ... | Ek`` — union of the operand languages."""

    operands: Tuple[RBE, ...]

    __slots__ = ("operands",)

    def __post_init__(self):
        if len(self.operands) < 1:
            raise ValueError("disjunction requires at least one operand")

    def children(self) -> Tuple[RBE, ...]:
        return self.operands

    def nullable(self) -> bool:
        return any(op.nullable() for op in self.operands)

    def size_interval(self) -> Interval:
        intervals = [op.size_interval() for op in self.operands]
        lower = min(i.lower for i in intervals)
        uppers = [i.upper for i in intervals]
        upper = None if any(u is None for u in uppers) else max(uppers)
        return Interval(lower, upper)

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> "RBE":
        return Disjunction(tuple(op.map_symbols(fn) for op in self.operands))

    def __str__(self) -> str:
        return "(" + " | ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Concatenation(RBE):
    """Unordered concatenation ``E1 || ... || Ek`` — bag union of the operand languages."""

    operands: Tuple[RBE, ...]

    __slots__ = ("operands",)

    def __post_init__(self):
        if len(self.operands) < 1:
            raise ValueError("concatenation requires at least one operand")

    def children(self) -> Tuple[RBE, ...]:
        return self.operands

    def nullable(self) -> bool:
        return all(op.nullable() for op in self.operands)

    def size_interval(self) -> Interval:
        total = ZERO
        for op in self.operands:
            total = total + op.size_interval()
        return total

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> "RBE":
        return Concatenation(tuple(op.map_symbols(fn) for op in self.operands))

    def __str__(self) -> str:
        return "(" + " || ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Repetition(RBE):
    """Unordered repetition ``E^I`` for an occurrence interval ``I``."""

    operand: RBE
    interval: Interval

    __slots__ = ("operand", "interval")

    def children(self) -> Tuple[RBE, ...]:
        return (self.operand,)

    def nullable(self) -> bool:
        return self.interval.lower == 0 or self.operand.nullable()

    def size_interval(self) -> Interval:
        return self.operand.size_interval().scale(self.interval)

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> "RBE":
        return Repetition(self.operand.map_symbols(fn), self.interval)

    def __str__(self) -> str:
        short = self.interval.shorthand()
        suffix = short if short is not None else str(self.interval)
        if short == "1":
            suffix = "^1"
        elif short is not None:
            pass
        operand = str(self.operand)
        if isinstance(self.operand, (SymbolAtom, Epsilon)):
            return f"{operand}{suffix if short in ('?', '+', '*') else '^' + str(self.interval)}"
        return f"({operand})^{self.interval}"


@dataclass(frozen=True)
class Intersection(RBE):
    """Intersection ``E1 ∩ E2`` (used by the Presburger encoding of Section 6.1)."""

    operands: Tuple[RBE, ...]

    __slots__ = ("operands",)

    def __post_init__(self):
        if len(self.operands) < 1:
            raise ValueError("intersection requires at least one operand")

    def children(self) -> Tuple[RBE, ...]:
        return self.operands

    def nullable(self) -> bool:
        return all(op.nullable() for op in self.operands)

    def size_interval(self) -> Interval:
        intervals = [op.size_interval() for op in self.operands]
        lower = max(i.lower for i in intervals)
        uppers = [i.upper for i in intervals if i.upper is not None]
        upper = min(uppers) if uppers else None
        if upper is not None and lower > upper:
            # Empty over-approximation; callers treat it as "no bag fits".
            return ZERO
        return Interval(lower, upper)

    def map_symbols(self, fn: Callable[[Symbol], Symbol]) -> "RBE":
        return Intersection(tuple(op.map_symbols(fn) for op in self.operands))

    def __str__(self) -> str:
        return "(" + " & ".join(str(op) for op in self.operands) + ")"


#: The shared ε expression.
EPSILON = Epsilon()


# --------------------------------------------------------------------------- #
# Construction helpers
# --------------------------------------------------------------------------- #
def atom(label: Symbol, type_name: Optional[Hashable] = None, interval=None) -> RBE:
    """Build an atomic expression, optionally typed and repeated.

    ``atom("a")`` is the symbol ``a``; ``atom("a", "t")`` is the shape-expression
    symbol ``a::t``; a non-``None`` ``interval`` wraps the atom in a repetition,
    e.g. ``atom("a", "t", "*")`` is ``a::t*``.
    """
    symbol = label if type_name is None else (label, type_name)
    expr: RBE = SymbolAtom(symbol)
    if interval is not None:
        expr = Repetition(expr, Interval.of(interval))
    return expr


def concat(*operands: RBE) -> RBE:
    """Unordered concatenation of any number of expressions (ε when empty)."""
    flat = []
    for op in operands:
        if isinstance(op, Concatenation):
            flat.extend(op.operands)
        elif isinstance(op, Epsilon):
            continue
        else:
            flat.append(op)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concatenation(tuple(flat))


def disj(*operands: RBE) -> RBE:
    """Disjunction of any number of expressions."""
    if not operands:
        raise ValueError("disjunction of zero operands is undefined")
    flat = []
    for op in operands:
        if isinstance(op, Disjunction):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if len(flat) == 1:
        return flat[0]
    return Disjunction(tuple(flat))


def intersect(*operands: RBE) -> RBE:
    """Intersection of any number of expressions."""
    if not operands:
        raise ValueError("intersection of zero operands is undefined")
    if len(operands) == 1:
        return operands[0]
    return Intersection(tuple(operands))
