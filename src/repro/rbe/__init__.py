"""Regular bag expressions (RBE) — syntax, parsing, classes, and membership."""

from repro.rbe.ast import (
    RBE,
    Epsilon,
    SymbolAtom,
    Disjunction,
    Concatenation,
    Repetition,
    Intersection,
    EPSILON,
    atom,
    concat,
    disj,
)
from repro.rbe.parser import parse_rbe
from repro.rbe.membership import rbe_matches, rbe_nonempty, rbe_min_bag, sample_bags
from repro.rbe.rbe0 import RBE0Profile, as_rbe0, is_rbe0, rbe0_matches, rbe0_bag_interval
from repro.rbe.sorbe import is_sorbe

__all__ = [
    "RBE",
    "Epsilon",
    "SymbolAtom",
    "Disjunction",
    "Concatenation",
    "Repetition",
    "Intersection",
    "EPSILON",
    "atom",
    "concat",
    "disj",
    "parse_rbe",
    "rbe_matches",
    "rbe_nonempty",
    "rbe_min_bag",
    "sample_bags",
    "RBE0Profile",
    "as_rbe0",
    "is_rbe0",
    "rbe0_matches",
    "rbe0_bag_interval",
    "is_sorbe",
]
