"""The tractable subclass RBE0 and its polynomial membership test.

RBE0 (Section 2) is the class of expressions of the form::

    a1^M1 || a2^M2 || ... || an^Mn

where every ``ai`` is a symbol and every ``Mi`` is a *basic* interval
(``1 ? + *``).  Symbols may repeat (``a || a+ || b*`` is RBE0).  Schemas whose
type definitions are all RBE0 correspond exactly to shape graphs
(Proposition 3.2) and have tractable validation.

Membership for RBE0 is polynomial: for each symbol the multiplicities assigned
to its atoms only need to sum to the observed count, and because occurrence
intervals are contiguous the Minkowski sum of the atom intervals is again a
contiguous interval, so a per-symbol inclusion check suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.bags import Bag
from repro.core.intervals import Interval, ONE, ZERO
from repro.rbe.ast import (
    RBE,
    Concatenation,
    Epsilon,
    Repetition,
    SymbolAtom,
)

Symbol = Hashable


@dataclass(frozen=True)
class RBE0Profile:
    """The flattened form of an RBE0 expression: a tuple of ``(symbol, interval)`` atoms."""

    atoms: Tuple[Tuple[Symbol, Interval], ...]

    @property
    def alphabet(self) -> frozenset:
        return frozenset(symbol for symbol, _ in self.atoms)

    def per_symbol_interval(self) -> Dict[Symbol, Interval]:
        """Map each symbol to the ⊕-sum of the intervals of its atoms.

        This is the admissible range of occurrences of the symbol in a matching
        bag, and is the quantity shape graphs record on their edges.
        """
        summed: Dict[Symbol, Interval] = {}
        for symbol, interval in self.atoms:
            summed[symbol] = summed.get(symbol, ZERO) + interval
        return summed

    def __iter__(self):
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)


def as_rbe0(expr: RBE, require_basic: bool = True) -> Optional[RBE0Profile]:
    """Flatten ``expr`` into an :class:`RBE0Profile`, or return ``None``.

    ``expr`` qualifies when it is ε, a single (possibly repeated) symbol, or an
    unordered concatenation of such factors.  With ``require_basic=True``
    (the default, matching the paper's definition) every repetition interval
    must be basic; pass ``False`` to accept arbitrary intervals, which is the
    flattened form used by graphs with arbitrary occurrence intervals.
    """
    atoms: List[Tuple[Symbol, Interval]] = []
    stack: List[RBE] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Epsilon):
            continue
        if isinstance(node, Concatenation):
            stack.extend(reversed(node.operands))
            continue
        if isinstance(node, SymbolAtom):
            atoms.append((node.symbol, ONE))
            continue
        if isinstance(node, Repetition) and isinstance(node.operand, SymbolAtom):
            interval = node.interval
            if require_basic and not interval.is_basic:
                return None
            atoms.append((node.operand.symbol, interval))
            continue
        return None
    return RBE0Profile(tuple(atoms))


def is_rbe0(expr: RBE, require_basic: bool = True) -> bool:
    """True when ``expr`` belongs to the class RBE0."""
    return as_rbe0(expr, require_basic=require_basic) is not None


def rbe0_matches(profile: RBE0Profile, bag: Bag) -> bool:
    """Polynomial membership test for RBE0 (Section 2 / [15]).

    A bag matches iff every symbol it contains is mentioned by the profile and,
    for every symbol, the observed count lies in the ⊕-sum of the intervals of
    the atoms carrying that symbol.
    """
    summed = profile.per_symbol_interval()
    for symbol in bag.support():
        if symbol not in summed:
            return False
    for symbol, interval in summed.items():
        if bag.count(symbol) not in interval:
            return False
    return True


def rbe0_bag_interval(profile: RBE0Profile, symbol: Symbol) -> Interval:
    """The admissible occurrence interval of ``symbol`` according to ``profile``."""
    return profile.per_symbol_interval().get(symbol, ZERO)


def profile_to_rbe(profile: RBE0Profile) -> RBE:
    """Rebuild an RBE expression from a profile (inverse of :func:`as_rbe0`)."""
    from repro.rbe.ast import concat

    factors: List[RBE] = []
    for symbol, interval in profile.atoms:
        atom_expr: RBE = SymbolAtom(symbol)
        if interval != ONE:
            atom_expr = Repetition(atom_expr, interval)
        factors.append(atom_expr)
    return concat(*factors)
