"""Membership and emptiness for regular bag expressions.

Membership for general RBEs is NP-complete (Kopczynski & To, cited as [13] in
the paper); the implementation below is an exact exponential-time procedure
with memoisation and interval-based pruning, adequate for the schema sizes a
containment checker manipulates.  The polynomial special case for RBE0 lives in
:mod:`repro.rbe.rbe0`.

The module also provides language non-emptiness (used by validation, where type
satisfaction is an intersection-non-emptiness test), minimal witnesses, and a
random sampler of bags used by the workload generators.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.bags import Bag
from repro.core.intervals import Interval
from repro.errors import ReproError
from repro.rbe.ast import (
    RBE,
    Concatenation,
    Disjunction,
    Epsilon,
    Intersection,
    Repetition,
    SymbolAtom,
)


# --------------------------------------------------------------------------- #
# Membership
# --------------------------------------------------------------------------- #
def rbe_matches(expr: RBE, bag: Bag) -> bool:
    """Decide whether ``bag`` belongs to the bag language of ``expr``.

    Exact for every RBE construct including intersection.  Worst-case
    exponential (the problem is NP-complete in general) but heavily pruned:
    sub-problems are memoised and branches whose total-size interval cannot
    accommodate the bag are discarded immediately.
    """
    memo: Dict[Tuple[RBE, Bag], bool] = {}
    return _matches(expr, bag, memo)


def _matches(expr: RBE, bag: Bag, memo: Dict[Tuple[RBE, Bag], bool]) -> bool:
    key = (expr, bag)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _matches_uncached(expr, bag, memo)
    memo[key] = result
    return result


def _matches_uncached(expr: RBE, bag: Bag, memo) -> bool:
    if bag.size not in expr.size_interval():
        return False
    if isinstance(expr, Epsilon):
        return bag.is_empty
    if isinstance(expr, SymbolAtom):
        return bag.size == 1 and bag.count(expr.symbol) == 1
    if isinstance(expr, Disjunction):
        return any(_matches(op, bag, memo) for op in expr.operands)
    if isinstance(expr, Intersection):
        return all(_matches(op, bag, memo) for op in expr.operands)
    if isinstance(expr, Concatenation):
        if not bag.support() <= expr.alphabet():
            return False
        return _matches_concat(list(expr.operands), bag, memo)
    if isinstance(expr, Repetition):
        if not bag.support() <= expr.alphabet():
            return False
        return _matches_repetition(expr, bag, memo)
    raise ReproError(f"unknown RBE node {type(expr).__name__}")


def _matches_concat(operands: List[RBE], bag: Bag, memo) -> bool:
    """Split ``bag`` among the operands of an unordered concatenation."""
    if not operands:
        return bag.is_empty
    if len(operands) == 1:
        return _matches(operands[0], bag, memo)
    first, rest = operands[0], operands[1:]
    first_alphabet = first.alphabet()
    rest_alphabet = frozenset().union(*(op.alphabet() for op in rest)) if rest else frozenset()
    # Symbols only the first operand knows must go entirely to it; symbols it
    # does not know must go entirely to the rest; shared symbols are enumerated.
    forced_first: Dict = {}
    for symbol in bag.support():
        if symbol in first_alphabet and symbol not in rest_alphabet:
            forced_first[symbol] = bag.count(symbol)
        elif symbol not in first_alphabet and symbol not in rest_alphabet:
            return False
    shared = sorted(
        (s for s in bag.support() if s in first_alphabet and s in rest_alphabet),
        key=repr,
    )
    first_interval = first.size_interval()
    forced_size = sum(forced_first.values())
    ranges = [range(bag.count(symbol) + 1) for symbol in shared]
    for counts in itertools.product(*ranges):
        part_size = forced_size + sum(counts)
        if part_size not in first_interval:
            continue
        part = dict(forced_first)
        for symbol, count in zip(shared, counts):
            if count:
                part[symbol] = count
        first_bag = Bag(part)
        if not _matches(first, first_bag, memo):
            continue
        if _matches_concat(rest, bag - first_bag, memo):
            return True
    return False


def _matches_repetition(expr: Repetition, bag: Bag, memo) -> bool:
    """Check ``bag ∈ ⋃_{i ∈ I} L(E)^i`` by peeling non-empty factors."""
    interval = expr.interval
    operand = expr.operand
    if bag.is_empty:
        # Either zero repetitions are allowed, or any number of ε factors.
        return 0 in interval or operand.nullable()
    if interval.upper == 0:
        return False
    remaining = Interval(max(interval.lower - 1, 0),
                         None if interval.upper is None else interval.upper - 1)
    tail = Repetition(operand, remaining)
    for factor in _iter_subbags(bag, operand):
        if factor.is_empty:
            continue
        if not _matches(operand, factor, memo):
            continue
        if _matches(tail, bag - factor, memo):
            return True
    return False


def _iter_subbags(bag: Bag, expr: RBE) -> Iterator[Bag]:
    """Enumerate sub-bags of ``bag`` restricted to ``expr``'s alphabet and size bound."""
    alphabet = expr.alphabet()
    symbols = sorted((s for s in bag.support() if s in alphabet), key=repr)
    size_interval = expr.size_interval()
    ranges = [range(bag.count(symbol) + 1) for symbol in symbols]
    for counts in itertools.product(*ranges):
        total = sum(counts)
        if total not in size_interval:
            continue
        yield Bag({symbol: count for symbol, count in zip(symbols, counts) if count})


# --------------------------------------------------------------------------- #
# Emptiness and witnesses
# --------------------------------------------------------------------------- #
def rbe_nonempty(expr: RBE) -> bool:
    """Decide whether ``L(expr)`` contains at least one bag.

    Trivial for intersection-free expressions; intersections are delegated to
    the Presburger backend (Section 6.1 encoding), which is exact.
    """
    if isinstance(expr, (Epsilon, SymbolAtom)):
        return True
    if isinstance(expr, Disjunction):
        return any(rbe_nonempty(op) for op in expr.operands)
    if isinstance(expr, Concatenation):
        return all(rbe_nonempty(op) for op in expr.operands)
    if isinstance(expr, Repetition):
        if 0 in expr.interval:
            return True
        return rbe_nonempty(expr.operand)
    if isinstance(expr, Intersection):
        from repro.presburger.build import rbe_language_nonempty

        return rbe_language_nonempty(expr)
    raise ReproError(f"unknown RBE node {type(expr).__name__}")


def rbe_min_bag(expr: RBE) -> Optional[Bag]:
    """Return a bag of minimum total size in ``L(expr)``, or ``None`` when empty.

    For intersection nodes a (possibly non-minimal) witness is produced via
    the Presburger backend.
    """
    if isinstance(expr, Epsilon):
        return Bag()
    if isinstance(expr, SymbolAtom):
        return Bag([expr.symbol])
    if isinstance(expr, Disjunction):
        best: Optional[Bag] = None
        for op in expr.operands:
            candidate = rbe_min_bag(op)
            if candidate is None:
                continue
            if best is None or candidate.size < best.size:
                best = candidate
        return best
    if isinstance(expr, Concatenation):
        total = Bag()
        for op in expr.operands:
            candidate = rbe_min_bag(op)
            if candidate is None:
                return None
            total = total + candidate
        return total
    if isinstance(expr, Repetition):
        if 0 in expr.interval:
            return Bag()
        inner = rbe_min_bag(expr.operand)
        if inner is None:
            return None
        return inner * expr.interval.lower
    if isinstance(expr, Intersection):
        from repro.presburger.build import rbe_language_witness

        return rbe_language_witness(expr)
    raise ReproError(f"unknown RBE node {type(expr).__name__}")


# --------------------------------------------------------------------------- #
# Sampling (used by workload generators)
# --------------------------------------------------------------------------- #
def sample_bags(
    expr: RBE,
    count: int = 1,
    rng: Optional[random.Random] = None,
    max_repeat: int = 3,
) -> List[Bag]:
    """Draw ``count`` random bags from ``L(expr)``.

    Repetitions with an unbounded upper limit are sampled with at most
    ``max_repeat`` iterations above the lower bound.  Intersection nodes are
    not supported (they do not occur in schemas, only in internal encodings).
    """
    rng = rng or random.Random(0)
    return [_sample(expr, rng, max_repeat) for _ in range(count)]


def _sample(expr: RBE, rng: random.Random, max_repeat: int) -> Bag:
    if isinstance(expr, Epsilon):
        return Bag()
    if isinstance(expr, SymbolAtom):
        return Bag([expr.symbol])
    if isinstance(expr, Disjunction):
        viable = [op for op in expr.operands if rbe_nonempty(op)]
        if not viable:
            raise ReproError("cannot sample from an empty language")
        return _sample(rng.choice(viable), rng, max_repeat)
    if isinstance(expr, Concatenation):
        total = Bag()
        for op in expr.operands:
            total = total + _sample(op, rng, max_repeat)
        return total
    if isinstance(expr, Repetition):
        lower = expr.interval.lower
        if expr.interval.upper is None:
            upper = lower + max_repeat
        else:
            upper = min(expr.interval.upper, lower + max_repeat)
        times = rng.randint(lower, upper)
        total = Bag()
        for _ in range(times):
            total = total + _sample(expr.operand, rng, max_repeat)
        return total
    if isinstance(expr, Intersection):
        raise ReproError("sampling from intersections is not supported")
    raise ReproError(f"unknown RBE node {type(expr).__name__}")
