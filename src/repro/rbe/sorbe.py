"""Single-occurrence regular bag expressions (SORBE).

A SORBE is an RBE in which every symbol occurs at most once syntactically.
SORBE have tractable membership and give rise to deterministic shape expression
schemas (DetShEx) — see Section 1 of the paper and [15].  The containment
algorithms in this library only need the class membership test; membership of
bags in SORBE languages is handled by the generic machinery (which is efficient
on single-occurrence expressions because no splitting choices arise).
"""

from __future__ import annotations

from collections import Counter

from repro.rbe.ast import RBE


def is_sorbe(expr: RBE) -> bool:
    """True when no symbol occurs more than once in the expression tree."""
    occurrences = Counter(expr.symbol_occurrences())
    return all(count <= 1 for count in occurrences.values())


def symbol_occurrence_counts(expr: RBE) -> Counter:
    """How many times each symbol occurs syntactically in the expression."""
    return Counter(expr.symbol_occurrences())
