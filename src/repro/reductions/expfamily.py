"""The exponential counter-example family of Lemma 5.1.

For every ``n`` the lemma exhibits two shape graphs (ShEx0 schemas) ``H`` and
``K`` with ``H ⊄ K`` whose *smallest* counter-example has exponentially many
nodes: the counter-example must be a full binary tree of depth ``n`` whose
``2^n`` leaves carry pairwise-distinct subsets of ``{a1, ..., an}``.

The schemas (adapted verbatim from the proof, with the convention that an atom
with interval ``[0;0]`` is simply omitted):

* tree types ``t(i) → L::t(i+1) || R::t(i+1)`` for ``i ≤ n`` and leaves
  ``t(n+1) → a1::o? || ... || an::o?``;
* usage-tracking types ``s(j)_{i,M,d}`` recording whether symbol ``a_i`` is
  used (``M=1``) or missing (``M=0``) in a leaf reached through the ``d``
  subtree;
* error types ``p(j)_{i,d}`` that type the root of any tree in which some node
  at depth ``i`` has a leaf missing ``a_i`` in its left subtree or using
  ``a_i`` in its right subtree.

``H`` consists of all rules, ``K`` of all rules except the one defining
``t(1)``; thus a graph is a counter-example exactly when some node has only the
type ``t(1)`` — which the ``p``-types prevent unless the tree encodes all
``2^n`` distinct subsets.  :func:`exponential_counterexample` constructs that
canonical counter-example explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.graph import Graph
from repro.schema.shex import ShExSchema


def _leaf_rule(n: int, fixed_index: int = 0, fixed_used: bool = True) -> str:
    """The rule body of a leaf type; ``fixed_index`` > 0 pins symbol ``a_i`` on/off."""
    atoms: List[str] = []
    for i in range(1, n + 1):
        if i == fixed_index:
            if fixed_used:
                atoms.append(f"a{i} :: o")
            # a missing (M = 0) symbol contributes no atom at all
        else:
            atoms.append(f"a{i} :: o?")
    return " || ".join(atoms) if atoms else "eps"


def exponential_family(n: int) -> Tuple[ShExSchema, ShExSchema]:
    """Build the schema pair ``(H_n, K_n)`` of Lemma 5.1.

    ``H_n ⊄ K_n`` for every ``n ≥ 1`` and the minimal counter-example has
    ``2^{n+1}`` nodes (the full binary tree of depth ``n`` with pairwise
    distinct leaf subsets, plus the shared leaf-target node).
    """
    if n < 1:
        raise ValueError("the family is defined for n >= 1")
    rules: Dict[str, str] = {"o": "eps"}

    # Tree skeleton types t(1) .. t(n+1).
    for level in range(1, n + 1):
        rules[f"t{level}"] = f"L :: t{level + 1} || R :: t{level + 1}"
    rules[f"t{n + 1}"] = _leaf_rule(n)

    # Usage-tracking leaf types s(n+1)_{i,M,d}.
    for i in range(1, n + 1):
        for used in (0, 1):
            for direction in ("L", "R"):
                rules[f"s{n + 1}_{i}_{used}_{direction}"] = _leaf_rule(
                    n, fixed_index=i, fixed_used=bool(used)
                )

    # Usage propagation types s(j)_{i,M,d} for j = i+1 .. n.
    for i in range(1, n + 1):
        for level in range(i + 1, n + 1):
            for used in (0, 1):
                rules[f"s{level}_{i}_{used}_L"] = (
                    f"L :: s{level + 1}_{i}_{used}_L? || "
                    f"L :: s{level + 1}_{i}_{used}_R? || "
                    f"R :: t{level + 1}"
                )
                rules[f"s{level}_{i}_{used}_R"] = (
                    f"L :: t{level + 1} || "
                    f"R :: s{level + 1}_{i}_{used}_L? || "
                    f"R :: s{level + 1}_{i}_{used}_R?"
                )

    # Error types: p(i)_{i,d} detect the violation at depth i ...
    for i in range(1, n + 1):
        rules[f"p{i}_{i}_L"] = (
            f"L :: s{i + 1}_{i}_0_L? || L :: s{i + 1}_{i}_0_R? || R :: t{i + 1}"
        )
        rules[f"p{i}_{i}_R"] = (
            f"L :: t{i + 1} || R :: s{i + 1}_{i}_1_L? || R :: s{i + 1}_{i}_1_R?"
        )
        # ... and p(j)_{i,d} propagate it up to the root for j = 1 .. i-1.
        for level in range(1, i):
            rules[f"p{level}_{i}_L"] = (
                f"L :: p{level + 1}_{i}_L? || L :: p{level + 1}_{i}_R? || R :: t{level + 1}"
            )
            rules[f"p{level}_{i}_R"] = (
                f"L :: t{level + 1} || R :: p{level + 1}_{i}_L? || R :: p{level + 1}_{i}_R?"
            )

    schema_h = ShExSchema(rules, name=f"exp-family-H-{n}")
    k_rules = dict(rules)
    del k_rules["t1"]
    schema_k = ShExSchema(k_rules, name=f"exp-family-K-{n}", strict=False)
    return schema_h, schema_k


def exponential_counterexample(n: int) -> Graph:
    """The canonical counter-example for ``(H_n, K_n)``: a full binary tree.

    The tree has depth ``n``; the leaf reached by the left/right choices
    ``b_1 .. b_n`` carries exactly the symbols ``{a_i | b_i = L}`` — so all
    ``2^n`` leaves carry pairwise distinct subsets of ``{a_1, ..., a_n}``.
    Its root satisfies ``t(1)`` in ``H_n`` but no type of ``K_n``.
    """
    if n < 1:
        raise ValueError("the family is defined for n >= 1")
    graph = Graph(f"exp-counterexample-{n}")
    graph.add_node("o")

    def build(path: Tuple[str, ...]) -> str:
        node = "root" if not path else "node_" + "".join(path)
        graph.add_node(node)
        depth = len(path)
        if depth == n:
            for index, direction in enumerate(path, start=1):
                if direction == "L":
                    graph.add_edge(node, f"a{index}", "o")
            return node
        left = build(path + ("L",))
        right = build(path + ("R",))
        graph.add_edge(node, "L", left)
        graph.add_edge(node, "R", right)
        return node

    build(())
    return graph
