"""The SAT reduction of Theorem 3.5: embedding with arbitrary intervals is NP-hard.

Given a CNF formula ``ϕ``, the paper builds two graphs ``H`` and ``K`` with
arbitrary occurrence intervals such that ``ϕ`` is satisfiable iff ``H`` embeds
in ``K``.  The construction assumes every variable has exactly ``k`` positive
and ``k`` negative occurrences (and at least one of each); arbitrary CNF inputs
are first normalised by :func:`normalize_cnf_for_reduction`, which pads each
variable with one tautological clause containing the missing positive and
negative copies — padding never changes satisfiability.

The reduction (with occurrence ``j`` of a variable meaning its ``j``-th
*positive* or ``j``-th *negative* occurrence):

* ``H`` has a root ``r1`` with, per variable ``x_i``: an ``a``-edge of interval
  ``[k;k]`` to a gadget type ``w_i``, and unit ``a``-edges to occurrence types
  ``x_{i,j}`` and ``¬x_{i,j}`` for ``j = 1..k``.  ``w_i`` has a ``v_i``-edge to
  ``o``; each occurrence type has an edge labelled by its own occurrence name.
* ``K`` has a root ``r2`` with ``a``-edges of interval ``[k;k]`` to ``x_i`` and
  ``¬x_i`` (one per polarity per variable) and ``a``-edges of interval ``+`` to
  one clause type per clause.  ``x_i`` / ``¬x_i`` accept the ``v_i`` marker and
  any of the matching occurrence labels, all optional; a clause type accepts
  the occurrence labels of its literals, all optional.

``ϕ`` is satisfiable iff ``r1`` is simulated by ``r2`` iff ``H ≼ K``
(Theorem 3.5); the embedding check must therefore use the NP backtracking
witness engine, which is exactly the hardness message of the theorem.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.intervals import Interval
from repro.embedding.simulation import embeds, maximal_simulation
from repro.errors import ReductionError
from repro.graphs.graph import Graph
from repro.reductions.logic import CNFFormula, Literal


def normalize_cnf_for_reduction(cnf: CNFFormula) -> Tuple[CNFFormula, int]:
    """Pad a CNF formula so every variable has exactly ``k`` positive and ``k`` negative occurrences.

    One tautological clause (containing both polarities of the variable) is
    appended per variable needing padding; the returned ``k`` is the common
    occurrence count.  Padding preserves satisfiability because tautological
    clauses are satisfied by every valuation.
    """
    variables = cnf.variables()
    if not variables:
        raise ReductionError("the CNF formula must mention at least one variable")
    counts = cnf.occurrence_counts()
    highest = max(
        max(counts.get((v, True), 0), counts.get((v, False), 0)) for v in variables
    )
    k = highest + 1  # headroom guarantees every padding clause has both polarities
    clauses = list(cnf.clauses)
    for variable in variables:
        missing_positive = k - counts.get((variable, True), 0)
        missing_negative = k - counts.get((variable, False), 0)
        padding = tuple(
            [Literal(variable, True)] * missing_positive
            + [Literal(variable, False)] * missing_negative
        )
        clauses.append(padding)
    return CNFFormula(clauses), k


def _occurrence_labels(cnf: CNFFormula) -> Dict[Tuple[int, int], str]:
    """Assign each literal occurrence its label ``x_{i,j}`` / ``not_x_{i,j}``.

    Returns a map from (clause index, literal index) to the occurrence label,
    where ``j`` counts positive and negative occurrences of a variable
    separately (1-based), matching the convention of the construction.
    """
    variables = cnf.variables()
    positive_seen = {v: 0 for v in variables}
    negative_seen = {v: 0 for v in variables}
    labels: Dict[Tuple[int, int], str] = {}
    for clause_index, clause in enumerate(cnf.clauses):
        for literal_index, literal in enumerate(clause):
            if literal.positive:
                positive_seen[literal.variable] += 1
                j = positive_seen[literal.variable]
                labels[(clause_index, literal_index)] = f"{literal.variable}_{j}"
            else:
                negative_seen[literal.variable] += 1
                j = negative_seen[literal.variable]
                labels[(clause_index, literal_index)] = f"not_{literal.variable}_{j}"
    return labels


def sat_reduction_graphs(cnf: CNFFormula) -> Tuple[Graph, Graph, CNFFormula, int]:
    """Build the graphs ``(H, K)`` of Theorem 3.5 for a CNF formula.

    Returns ``(H, K, normalised_formula, k)``.  The graphs use the arbitrary
    intervals ``[k;k]`` and ``+`` and therefore exercise the NP witness engine.
    """
    normalised, k = normalize_cnf_for_reduction(cnf)
    variables = normalised.variables()
    occurrence_label = _occurrence_labels(normalised)

    graph_h = Graph("sat-H")
    graph_h.add_node("o")
    for variable in variables:
        gadget = f"w_{variable}"
        graph_h.add_edge("r1", "a", gadget, Interval.singleton(k))
        graph_h.add_edge(gadget, f"v_{variable}", "o", "1")
        for j in range(1, k + 1):
            positive_type = f"pos_{variable}_{j}"
            negative_type = f"neg_{variable}_{j}"
            graph_h.add_edge("r1", "a", positive_type, "1")
            graph_h.add_edge("r1", "a", negative_type, "1")
            graph_h.add_edge(positive_type, f"{variable}_{j}", "o", "1")
            graph_h.add_edge(negative_type, f"not_{variable}_{j}", "o", "1")

    graph_k = Graph("sat-K")
    graph_k.add_node("o")
    for variable in variables:
        true_type = f"val1_{variable}"
        false_type = f"val0_{variable}"
        graph_k.add_edge("r2", "a", true_type, Interval.singleton(k))
        graph_k.add_edge("r2", "a", false_type, Interval.singleton(k))
        graph_k.add_edge(true_type, f"v_{variable}", "o", "?")
        graph_k.add_edge(false_type, f"v_{variable}", "o", "?")
        for j in range(1, k + 1):
            graph_k.add_edge(true_type, f"{variable}_{j}", "o", "?")
            graph_k.add_edge(false_type, f"not_{variable}_{j}", "o", "?")
    for clause_index, clause in enumerate(normalised.clauses):
        clause_type = f"clause_{clause_index}"
        graph_k.add_edge("r2", "a", clause_type, "+")
        for literal_index in range(len(clause)):
            label = occurrence_label[(clause_index, literal_index)]
            graph_k.add_edge(clause_type, label, "o", "?")
    return graph_h, graph_k, normalised, k


def solve_sat_via_embedding(cnf: CNFFormula) -> bool:
    """Decide satisfiability of a CNF formula through the Theorem 3.5 reduction.

    Builds ``(H, K)`` and returns whether ``H`` embeds in ``K`` — which, by the
    theorem, holds exactly when the formula is satisfiable.
    """
    graph_h, graph_k, _, _ = sat_reduction_graphs(cnf)
    return embeds(graph_h, graph_k, engine="backtracking")


def extract_valuation(cnf: CNFFormula) -> Optional[Dict[str, bool]]:
    """Recover a satisfying valuation from the embedding, or ``None`` when unsatisfiable.

    Following the proof of Theorem 3.5: in any witness for ``(r1, r2)`` the
    gadget ``w_i`` (interval ``[k;k]``) must be routed to the sink of exactly
    one polarity type of ``x_i``, and that polarity is the value of ``x_i``.
    """
    graph_h, graph_k, normalised, _ = sat_reduction_graphs(cnf)
    result = maximal_simulation(graph_h, graph_k, engine="backtracking", collect_witnesses=True)
    if ("r1", "r2") not in result.simulation:
        return None
    witness = result.witnesses.get(("r1", "r2"))
    if witness is None:  # pragma: no cover - defensive
        return None
    edge_by_id = {edge.edge_id: edge for edge in graph_h.out_edges("r1")}
    valuation: Dict[str, bool] = {}
    for source_id, sink in witness.items():
        source = edge_by_id[source_id]
        if str(source.target).startswith("w_"):
            variable = str(source.target)[2:]
            valuation[variable] = str(sink.target).startswith("val1_")
    return valuation
