"""The DNF-tautology reduction of Theorem 4.5: containment for DetShEx0 is coNP-hard.

Given a DNF formula ``ϕ`` over variables ``x1 .. xn`` with terms ``d1 .. dm``,
two deterministic ShEx0 schemas ``H`` and ``K`` are built (Figure 6) such that
``L(H) ⊆ L(K)`` iff ``ϕ`` is a tautology:

* ``H`` describes valuation graphs: a root with one ``xi``-edge per variable to
  a value node that may carry a ``t``-edge, an ``f``-edge, both, or neither.
* ``K`` covers every such graph except the ones encoding a *proper* valuation
  that falsifies every term: root types ``r0_i`` / ``r1_i`` cover the improper
  cases (variable ``i`` with no value / both values), and one root type per
  term covers the valuations satisfying that term.

Both schemas are in DetShEx0 but (intentionally) not in DetShEx0-: the value
types use ``?`` yet are referenced only through ``1``-edges, which is exactly
the feature the tractable class forbids.

Because the library has no general polynomial decision procedure for DetShEx0
(none can exist unless P = coNP), the module also provides
:func:`decide_dnf_containment_exactly`, which decides containment for *this
family* exactly by enumerating the ``4^n`` canonical valuation graphs — the
proof of Theorem 4.5 shows these are the only counter-example candidates.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional, Tuple

from repro.graphs.graph import Graph
from repro.reductions.logic import DNFFormula
from repro.schema.shex import ShExSchema
from repro.schema.validation import satisfies


def dnf_reduction_schemas(dnf: DNFFormula) -> Tuple[ShExSchema, ShExSchema]:
    """Build the schema pair ``(H, K)`` of Theorem 4.5 for a DNF formula."""
    variables = dnf.variables()

    h_rules: Dict[str, str] = {
        "r": " || ".join(f"{variable} :: v" for variable in variables) or "eps",
        "v": "t :: o? || f :: o?",
        "o": "eps",
    }
    schema_h = ShExSchema(h_rules, name="dnf-H")

    k_rules: Dict[str, str] = {
        "o": "eps",
        "vany": "t :: o? || f :: o?",
        "vnone": "eps",
        "vboth": "t :: o || f :: o",
        "vtrue": "t :: o || f :: o?",
        "vfalse": "f :: o || t :: o?",
    }
    for index, variable in enumerate(variables):
        none_atoms = [
            f"{other} :: {'vnone' if other == variable else 'vany'}" for other in variables
        ]
        both_atoms = [
            f"{other} :: {'vboth' if other == variable else 'vany'}" for other in variables
        ]
        k_rules[f"r0_{index}"] = " || ".join(none_atoms)
        k_rules[f"r1_{index}"] = " || ".join(both_atoms)
    for term_index, term in enumerate(dnf.clauses):
        required: Dict[str, str] = {}
        for literal in term:
            required[literal.variable] = "vtrue" if literal.positive else "vfalse"
        atoms = [
            f"{variable} :: {required.get(variable, 'vany')}" for variable in variables
        ]
        k_rules[f"rd_{term_index}"] = " || ".join(atoms)
    schema_k = ShExSchema(k_rules, name="dnf-K")
    return schema_h, schema_k


def valuation_graph(
    variables: Iterable[str],
    valuation: Dict[str, Optional[bool]],
) -> Graph:
    """The canonical instance of ``L(H)`` encoding a (possibly improper) valuation.

    ``valuation[x]`` may be ``True`` (only a ``t``-edge), ``False`` (only an
    ``f``-edge), ``"both"`` (both edges) or ``None`` (no edge); proper
    valuations use only ``True`` / ``False``.
    """
    graph = Graph("valuation")
    graph.add_node("leaf")
    graph.add_node("root")
    for variable in variables:
        value_node = f"value_{variable}"
        graph.add_edge("root", variable, value_node)
        value = valuation.get(variable)
        if value is True or value == "both":
            graph.add_edge(value_node, "t", "leaf")
        if value is False or value == "both":
            graph.add_edge(value_node, "f", "leaf")
    return graph


def decide_dnf_containment_exactly(
    schema_h: ShExSchema,
    schema_k: ShExSchema,
    dnf: DNFFormula,
) -> Tuple[bool, Optional[Graph]]:
    """Decide ``H ⊆ K`` for the Theorem 4.5 family by exhausting valuation graphs.

    The proof of the theorem shows that a counter-example exists iff some
    *proper* valuation graph is one, so enumerating the ``2^n`` proper
    valuations (plus verifying them) decides containment exactly for this
    family.  Returns ``(contained, counterexample_or_None)``.
    """
    variables = dnf.variables()
    for values in itertools.product((False, True), repeat=len(variables)):
        valuation = dict(zip(variables, values))
        candidate = valuation_graph(variables, valuation)
        if satisfies(candidate, schema_h) and not satisfies(candidate, schema_k):
            return False, candidate
    return True, None


def is_tautology_via_containment(dnf: DNFFormula) -> bool:
    """Decide tautology of a DNF formula through the containment reduction.

    Builds the schema pair of Theorem 4.5 and decides the containment exactly
    (via :func:`decide_dnf_containment_exactly`); by the theorem the answer
    equals tautology of the input formula.
    """
    schema_h, schema_k = dnf_reduction_schemas(dnf)
    contained, _ = decide_dnf_containment_exactly(schema_h, schema_k, dnf)
    return contained
