"""The paper's hardness reductions, implemented as executable constructions."""

from repro.reductions.logic import (
    CNFFormula,
    DNFFormula,
    Literal,
    random_cnf,
    random_dnf,
    brute_force_satisfiable,
    brute_force_tautology,
)
from repro.reductions.sat import (
    sat_reduction_graphs,
    solve_sat_via_embedding,
    normalize_cnf_for_reduction,
)
from repro.reductions.dnf import (
    dnf_reduction_schemas,
    is_tautology_via_containment,
    decide_dnf_containment_exactly,
    valuation_graph,
)
from repro.reductions.expfamily import (
    exponential_family,
    exponential_counterexample,
)

__all__ = [
    "CNFFormula",
    "DNFFormula",
    "Literal",
    "random_cnf",
    "random_dnf",
    "brute_force_satisfiable",
    "brute_force_tautology",
    "sat_reduction_graphs",
    "solve_sat_via_embedding",
    "normalize_cnf_for_reduction",
    "dnf_reduction_schemas",
    "is_tautology_via_containment",
    "decide_dnf_containment_exactly",
    "valuation_graph",
    "exponential_family",
    "exponential_counterexample",
]
