"""Propositional formulas (CNF and DNF) with brute-force reference procedures.

The hardness constructions of the paper reduce from SAT of CNF formulas
(Theorem 3.5) and from tautology of DNF formulas (Theorem 4.5).  This module
provides the formula data types, random instance generators, and exponential
brute-force deciders used to cross-validate the reductions in the tests and
benchmarks.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReductionError


@dataclass(frozen=True)
class Literal:
    """A propositional literal: a variable name and a polarity."""

    variable: str
    positive: bool = True

    def negate(self) -> "Literal":
        return Literal(self.variable, not self.positive)

    def satisfied_by(self, valuation: Dict[str, bool]) -> bool:
        value = valuation.get(self.variable, False)
        return value if self.positive else not value

    def __str__(self) -> str:
        return self.variable if self.positive else f"~{self.variable}"


Clause = Tuple[Literal, ...]


class _FormulaBase:
    """Shared plumbing for CNF and DNF formulas (lists of literal tuples)."""

    def __init__(self, clauses: Iterable[Sequence[Literal]]):
        self.clauses: List[Clause] = [tuple(clause) for clause in clauses]
        if any(len(clause) == 0 for clause in self.clauses):
            raise ReductionError("empty clauses/terms are not allowed")

    def variables(self) -> List[str]:
        seen: Dict[str, None] = {}
        for clause in self.clauses:
            for literal in clause:
                seen.setdefault(literal.variable, None)
        return list(seen)

    def occurrence_counts(self) -> Dict[Tuple[str, bool], int]:
        """How many times each (variable, polarity) pair occurs."""
        counts: Dict[Tuple[str, bool], int] = {}
        for clause in self.clauses:
            for literal in clause:
                key = (literal.variable, literal.positive)
                counts[key] = counts.get(key, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.clauses)


class CNFFormula(_FormulaBase):
    """A conjunction of disjunctive clauses."""

    def satisfied_by(self, valuation: Dict[str, bool]) -> bool:
        return all(
            any(literal.satisfied_by(valuation) for literal in clause)
            for clause in self.clauses
        )

    def __str__(self) -> str:
        return " & ".join(
            "(" + " | ".join(str(literal) for literal in clause) + ")"
            for clause in self.clauses
        )


class DNFFormula(_FormulaBase):
    """A disjunction of conjunctive terms."""

    def satisfied_by(self, valuation: Dict[str, bool]) -> bool:
        return any(
            all(literal.satisfied_by(valuation) for literal in term)
            for term in self.clauses
        )

    def __str__(self) -> str:
        return " | ".join(
            "(" + " & ".join(str(literal) for literal in term) + ")"
            for term in self.clauses
        )


def _all_valuations(variables: Sequence[str]) -> Iterable[Dict[str, bool]]:
    for values in itertools.product((False, True), repeat=len(variables)):
        yield dict(zip(variables, values))


def brute_force_satisfiable(cnf: CNFFormula) -> Optional[Dict[str, bool]]:
    """A satisfying valuation of the CNF formula, or ``None`` (exponential search)."""
    variables = cnf.variables()
    for valuation in _all_valuations(variables):
        if cnf.satisfied_by(valuation):
            return valuation
    return None


def brute_force_tautology(dnf: DNFFormula) -> Optional[Dict[str, bool]]:
    """``None`` when the DNF formula is a tautology, otherwise a falsifying valuation."""
    variables = dnf.variables()
    for valuation in _all_valuations(variables):
        if not dnf.satisfied_by(valuation):
            return valuation
    return None


def random_cnf(
    num_variables: int,
    num_clauses: int,
    clause_width: int = 3,
    rng: Optional[random.Random] = None,
) -> CNFFormula:
    """A random CNF formula (variables named ``x1 .. xn``)."""
    rng = rng or random.Random(0)
    variables = [f"x{i + 1}" for i in range(num_variables)]
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(variables, k=min(clause_width, num_variables))
        clauses.append(tuple(Literal(v, rng.random() < 0.5) for v in chosen))
    return CNFFormula(clauses)


def random_dnf(
    num_variables: int,
    num_terms: int,
    term_width: int = 2,
    rng: Optional[random.Random] = None,
) -> DNFFormula:
    """A random DNF formula (variables named ``x1 .. xn``)."""
    rng = rng or random.Random(0)
    variables = [f"x{i + 1}" for i in range(num_variables)]
    terms = []
    for _ in range(num_terms):
        chosen = rng.sample(variables, k=min(term_width, num_variables))
        terms.append(tuple(Literal(v, rng.random() < 0.5) for v in chosen))
    return DNFFormula(terms)
