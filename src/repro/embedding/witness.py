"""Witnesses of simulation (Definition 3.1) and their search engines.

Given nodes ``n`` of ``G`` and ``m`` of ``H`` and a candidate relation ``R``,
a *witness of simulation of n by m* is a function ``λ : out(n) → out(m)`` such
that every source edge is mapped to a sink edge with the same label whose end
points are related by ``R``, and, for every sink edge ``f``, the ⊕-sum of the
occurrence intervals of the source edges routed to ``f`` is included in the
occurrence interval of ``f``.

Two engines are provided:

* :func:`find_witness_flow` — polynomial, for *basic* occurrence intervals on
  both sides (the case of shape graphs, Theorem 3.4).  The paper proves
  tractability with a push-forth / pull-back rerouting argument; we obtain the
  same bound by reducing witness existence to a feasible-flow problem with
  lower bounds, which is equivalent: the category analysis below shows that
  with basic intervals the interval-sum conditions degenerate into unit
  counting constraints per sink.
* :func:`find_witness_backtracking` — exact for arbitrary intervals (the
  problem is then NP-complete, Theorem 3.5), with interval-sum pruning.

:func:`find_witness` picks the appropriate engine automatically.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.intervals import Interval, interval_sum
from repro.errors import ReproError
from repro.graphs.graph import Edge
from repro.util.assignment import feasible_assignment

NodeId = Hashable
#: A witness maps source edge ids to sink edges.
Witness = Dict[int, Edge]


def _admissible_sinks(
    source: Edge,
    sinks: Sequence[Edge],
    relation: Set[Tuple[NodeId, NodeId]],
) -> List[Edge]:
    """Sinks with the same label whose end point simulates the source's end point."""
    return [
        sink
        for sink in sinks
        if sink.label == source.label and (source.target, sink.target) in relation
    ]


def verify_witness(
    sources: Sequence[Edge],
    sinks: Sequence[Edge],
    witness: Mapping[int, Edge],
    relation: Set[Tuple[NodeId, NodeId]],
) -> bool:
    """Check conditions 1–3 of Definition 3.1 for a candidate witness."""
    sink_ids = {sink.edge_id for sink in sinks}
    if set(witness) != {source.edge_id for source in sources}:
        return False
    by_source = {source.edge_id: source for source in sources}
    routed: Dict[int, List[Interval]] = {sink.edge_id: [] for sink in sinks}
    for source_id, sink in witness.items():
        source = by_source[source_id]
        if sink.edge_id not in sink_ids:
            return False
        if source.label != sink.label:
            return False
        if (source.target, sink.target) not in relation:
            return False
        routed[sink.edge_id].append(source.occur)
    for sink in sinks:
        if not interval_sum(routed[sink.edge_id]).issubset(sink.occur):
            return False
    return True


# --------------------------------------------------------------------------- #
# Polynomial engine for basic intervals (Theorem 3.4)
# --------------------------------------------------------------------------- #
_CATEGORIES = {
    (1, 1): "one",
    (0, 1): "opt",
    (1, None): "plus",
    (0, None): "star",
}


def _category(interval: Interval) -> Optional[str]:
    return _CATEGORIES.get((interval.lower, interval.upper))


def find_witness_flow(
    sources: Sequence[Edge],
    sinks: Sequence[Edge],
    relation: Set[Tuple[NodeId, NodeId]],
) -> Optional[Witness]:
    """Polynomial witness search for basic occurrence intervals.

    With basic intervals the interval-sum condition of Definition 3.1 reduces,
    per sink, to counting constraints over *categories* of sources:

    * a ``1``-sink must receive exactly one ``1``-source and nothing else;
    * a ``?``-sink may receive at most one source, which must be a ``1`` or
      ``?`` source;
    * a ``+``-sink must receive at least one ``1`` or ``+`` source and may
      additionally receive anything;
    * a ``*``-sink may receive anything.

    These constraints are solved exactly as an assignment-with-group-bounds
    problem (a feasible flow with lower bounds), hence in polynomial time.
    """
    source_categories: Dict[int, str] = {}
    for source in sources:
        category = _category(source.occur)
        if category is None:
            raise ReproError(
                f"source edge {source} uses a non-basic interval; use the backtracking engine"
            )
        source_categories[source.edge_id] = category
    sink_categories: Dict[int, str] = {}
    for sink in sinks:
        category = _category(sink.occur)
        if category is None:
            raise ReproError(
                f"sink edge {sink} uses a non-basic interval; use the backtracking engine"
            )
        sink_categories[sink.edge_id] = category

    group_bounds: Dict[Tuple[str, int], Tuple[int, Optional[int]]] = {}
    group_sink: Dict[Tuple[str, int], Edge] = {}
    for sink in sinks:
        category = sink_categories[sink.edge_id]
        if category == "one":
            group_bounds[("only", sink.edge_id)] = (1, 1)
            group_sink[("only", sink.edge_id)] = sink
        elif category == "opt":
            group_bounds[("only", sink.edge_id)] = (0, 1)
            group_sink[("only", sink.edge_id)] = sink
        elif category == "plus":
            group_bounds[("core", sink.edge_id)] = (1, None)
            group_sink[("core", sink.edge_id)] = sink
            group_bounds[("rest", sink.edge_id)] = (0, None)
            group_sink[("rest", sink.edge_id)] = sink
        else:  # star
            group_bounds[("only", sink.edge_id)] = (0, None)
            group_sink[("only", sink.edge_id)] = sink

    allowed: Dict[int, List[Tuple[str, int]]] = {}
    for source in sources:
        category = source_categories[source.edge_id]
        options: List[Tuple[str, int]] = []
        for sink in _admissible_sinks(source, sinks, relation):
            sink_category = sink_categories[sink.edge_id]
            if sink_category == "one":
                if category == "one":
                    options.append(("only", sink.edge_id))
            elif sink_category == "opt":
                if category in ("one", "opt"):
                    options.append(("only", sink.edge_id))
            elif sink_category == "plus":
                if category in ("one", "plus"):
                    options.append(("core", sink.edge_id))
                else:
                    options.append(("rest", sink.edge_id))
            else:  # star
                options.append(("only", sink.edge_id))
        if not options:
            return None
        allowed[source.edge_id] = options

    assignment = feasible_assignment(allowed, group_bounds)
    if assignment is None:
        return None
    witness = {
        source_id: group_sink[group] for source_id, group in assignment.items()
    }
    return witness


# --------------------------------------------------------------------------- #
# Exact engine for arbitrary intervals (Theorem 3.5: NP-complete)
# --------------------------------------------------------------------------- #
def find_witness_backtracking(
    sources: Sequence[Edge],
    sinks: Sequence[Edge],
    relation: Set[Tuple[NodeId, NodeId]],
) -> Optional[Witness]:
    """Exact witness search for arbitrary occurrence intervals.

    Sources are routed one by one (most-constrained first); partial routings
    are pruned as soon as the accumulated lower bounds of a sink exceed its
    upper bound, and the final routing is checked against the full interval-sum
    condition.
    """
    admissible: Dict[int, List[Edge]] = {}
    by_id: Dict[int, Edge] = {}
    for source in sources:
        by_id[source.edge_id] = source
        options = _admissible_sinks(source, sinks, relation)
        if not options:
            return None
        admissible[source.edge_id] = options
    order = sorted(admissible, key=lambda source_id: len(admissible[source_id]))

    routed_lower: Dict[int, int] = {sink.edge_id: 0 for sink in sinks}
    routed_upper: Dict[int, Optional[int]] = {sink.edge_id: 0 for sink in sinks}
    assignment: Dict[int, Edge] = {}

    def sink_can_accept(sink: Edge, source: Edge) -> bool:
        # Overflow check on accumulated upper bounds: once the guaranteed
        # maximum inflow exceeds the sink's upper bound the routing is dead.
        if sink.occur.upper is None:
            return True
        current = routed_upper[sink.edge_id]
        if current is None:
            return False
        addition = source.occur.upper
        if addition is None:
            return False
        return current + addition <= sink.occur.upper

    def place(index: int) -> bool:
        if index == len(order):
            return _deficits_absent(sinks, routed_lower)
        source_id = order[index]
        source = by_id[source_id]
        for sink in admissible[source_id]:
            if not sink_can_accept(sink, source):
                continue
            assignment[source_id] = sink
            routed_lower[sink.edge_id] += source.occur.lower
            previous_upper = routed_upper[sink.edge_id]
            if previous_upper is None or source.occur.upper is None:
                routed_upper[sink.edge_id] = None
            else:
                routed_upper[sink.edge_id] = previous_upper + source.occur.upper
            if place(index + 1):
                return True
            del assignment[source_id]
            routed_lower[sink.edge_id] -= source.occur.lower
            routed_upper[sink.edge_id] = previous_upper
        return False

    if place(0):
        return dict(assignment)
    return None


def _deficits_absent(sinks: Sequence[Edge], routed_lower: Mapping[int, int]) -> bool:
    return all(routed_lower[sink.edge_id] >= sink.occur.lower for sink in sinks)


# --------------------------------------------------------------------------- #
# Dispatcher
# --------------------------------------------------------------------------- #
def find_witness(
    sources: Sequence[Edge],
    sinks: Sequence[Edge],
    relation: Set[Tuple[NodeId, NodeId]],
    engine: str = "auto",
) -> Optional[Witness]:
    """Find a witness of simulation, selecting the engine automatically.

    ``engine`` is one of ``"auto"``, ``"flow"`` (polynomial, basic intervals
    only) and ``"backtracking"`` (arbitrary intervals).
    """
    if engine == "flow":
        return find_witness_flow(sources, sinks, relation)
    if engine == "backtracking":
        return find_witness_backtracking(sources, sinks, relation)
    if engine != "auto":
        raise ReproError(f"unknown witness engine {engine!r}")
    basic = all(edge.occur.is_basic for edge in sources) and all(
        edge.occur.is_basic for edge in sinks
    )
    if basic:
        return find_witness_flow(sources, sinks, relation)
    return find_witness_backtracking(sources, sinks, relation)
