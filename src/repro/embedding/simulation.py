"""Maximal simulations and embeddings between graphs (Section 3).

A relation ``R ⊆ N_G × N_H`` is a *simulation of G in H* when every related
pair has a witness (Definition 3.1).  Simulations are closed under union, so a
unique maximal simulation exists; it is computed by the natural fix-point
refinement: start from the full relation and repeatedly drop pairs without a
witness.  ``G`` *embeds* in ``H`` (written ``G ≼ H``) when the maximal
simulation covers every node of ``G``.

Embeddings are the engine of the containment results: ``G ≼ H`` implies
``L(G) ⊆ L(H)`` (Lemma 3.3), and for DetShEx0- the converse also holds
(Corollary 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Set, Tuple

from repro.embedding.witness import Witness, find_witness
from repro.graphs.graph import Graph

NodeId = Hashable
Pair = Tuple[NodeId, NodeId]


@dataclass
class EmbeddingResult:
    """The outcome of an embedding test.

    ``embeds`` tells whether every node of the source graph is simulated by
    some node of the target graph; ``simulation`` is the maximal simulation;
    ``witnesses`` holds, for every related pair, one witness function (source
    edge id → target edge) proving the simulation; ``unmatched`` lists the
    source nodes with no simulating partner (empty iff ``embeds``).
    """

    embeds: bool
    simulation: Set[Pair]
    witnesses: Dict[Pair, Witness] = field(default_factory=dict)
    unmatched: Tuple[NodeId, ...] = ()
    refinement_rounds: int = 0
    witness_checks: int = 0

    def __bool__(self) -> bool:
        return self.embeds

    def simulators_of(self, node: NodeId) -> Set[NodeId]:
        """The target nodes that simulate ``node``."""
        return {m for (n, m) in self.simulation if n == node}


def _initial_relation(source: Graph, target: Graph) -> Set[Pair]:
    """A sound over-approximation of the maximal simulation.

    A pair ``(n, m)`` can only be in a simulation when every outgoing label of
    ``n`` also occurs on ``m`` (each source edge needs a same-label sink) and
    every *mandatory* outgoing label of ``m`` (lower bound ≥ 1) occurs on ``n``
    (otherwise the sink is in deficit).  Both conditions are necessary, so
    filtering by them never removes valid pairs.
    """
    relation: Set[Pair] = set()
    mandatory: Dict[NodeId, Set[str]] = {}
    for m in target.nodes:
        mandatory[m] = {
            edge.label for edge in target.out_edges(m) if edge.occur.lower >= 1
        }
    for n in source.nodes:
        labels_n = source.out_labels(n)
        for m in target.nodes:
            if not labels_n <= target.out_labels(m):
                continue
            if not mandatory[m] <= labels_n:
                continue
            relation.add((n, m))
    return relation


def maximal_simulation(
    source: Graph,
    target: Graph,
    engine: str = "auto",
    collect_witnesses: bool = False,
) -> EmbeddingResult:
    """Compute the maximal simulation of ``source`` in ``target``.

    ``engine`` selects the witness search procedure (see
    :func:`repro.embedding.witness.find_witness`).  With
    ``collect_witnesses=True`` the result also stores one witness per surviving
    pair, which makes the result a self-contained certificate.
    """
    relation = _initial_relation(source, target)
    rounds = 0
    checks = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        for pair in sorted(relation, key=repr):
            n, m = pair
            checks += 1
            witness = find_witness(
                source.out_edges(n), target.out_edges(m), relation, engine=engine
            )
            if witness is None:
                relation.discard(pair)
                changed = True
    witnesses: Dict[Pair, Witness] = {}
    if collect_witnesses:
        for pair in relation:
            n, m = pair
            witness = find_witness(
                source.out_edges(n), target.out_edges(m), relation, engine=engine
            )
            if witness is not None:
                witnesses[pair] = witness
    covered = {n for (n, _) in relation}
    unmatched = tuple(sorted((n for n in source.nodes if n not in covered), key=repr))
    return EmbeddingResult(
        embeds=not unmatched,
        simulation=relation,
        witnesses=witnesses,
        unmatched=unmatched,
        refinement_rounds=rounds,
        witness_checks=checks,
    )


def find_embedding(
    source: Graph,
    target: Graph,
    engine: str = "auto",
) -> EmbeddingResult:
    """Compute the maximal simulation together with witnesses (a full certificate)."""
    return maximal_simulation(source, target, engine=engine, collect_witnesses=True)


def embeds(source: Graph, target: Graph, engine: str = "auto") -> bool:
    """Decide ``source ≼ target`` (every source node simulated by some target node)."""
    return maximal_simulation(source, target, engine=engine).embeds
