"""Embeddings of graphs in shape graphs: witnesses, maximal simulations, embedding tests."""

from repro.embedding.witness import (
    find_witness,
    find_witness_flow,
    find_witness_backtracking,
    verify_witness,
)
from repro.embedding.simulation import (
    maximal_simulation,
    embeds,
    find_embedding,
    EmbeddingResult,
)

__all__ = [
    "find_witness",
    "find_witness_flow",
    "find_witness_backtracking",
    "verify_witness",
    "maximal_simulation",
    "embeds",
    "find_embedding",
    "EmbeddingResult",
]
